package shaping

import (
	"testing"

	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/media/mediatest"
	"csi/internal/netem"
	"csi/internal/qoe"
	"csi/internal/session"
)

func testManifest(t *testing.T) *media.Manifest {
	t.Helper()
	ladder := []media.Rung{
		{Bitrate: 250_000}, {Bitrate: 650_000}, {Bitrate: 1_500_000}, {Bitrate: 3_000_000},
	}
	return mediatest.Encode(t, media.EncodeConfig{
		Name: "shape", Seed: 21, DurationSec: 600, ChunkDur: 5, TargetPASR: 1.3, Ladder: ladder,
	})
}

func TestConditions(t *testing.T) {
	conds, err := Conditions()
	if err != nil {
		t.Fatal(err)
	}
	if conds["B1"].RateAt(100) != 10_000_000/8 {
		t.Fatalf("B1 rate = %g", conds["B1"].RateAt(100))
	}
	// B2 must dip to 1 Mbit/s somewhere in each period.
	sawLow := false
	for ts := 0.0; ts < 60; ts++ {
		if conds["B2"].RateAt(ts) < 200_000 {
			sawLow = true
		}
	}
	if !sawLow {
		t.Fatal("B2 never dips")
	}
}

func TestHigherRateRaisesQualityAndUsage(t *testing.T) {
	man := testManifest(t)
	conds, err := Conditions()
	if err != nil {
		t.Fatal(err)
	}
	low, err := RunPoint(man, "B1", conds["B1"], 1_000_000, 50_000, 180, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunPoint(man, "B1", conds["B1"], 3_000_000, 50_000, 180, 1)
	if err != nil {
		t.Fatal(err)
	}
	if high.DataBytes <= low.DataBytes {
		t.Errorf("data usage did not grow with rate: %d vs %d", low.DataBytes, high.DataBytes)
	}
	avgTrack := func(p *Point) float64 {
		s := 0.0
		for tr, share := range p.TrackShare {
			s += float64(tr) * share
		}
		return s
	}
	if avgTrack(high) <= avgTrack(low) {
		t.Errorf("track quality did not grow with rate: %.2f vs %.2f", avgTrack(low), avgTrack(high))
	}
	if !low.Inferred || !high.Inferred {
		t.Error("behaviour not read via CSI")
	}
}

func TestLargerBucketRaisesUsage(t *testing.T) {
	man := testManifest(t)
	conds, err := Conditions()
	if err != nil {
		t.Fatal(err)
	}
	small, err := RunPoint(man, "B2", conds["B2"], 1_500_000, 50_000, 240, 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunPoint(man, "B2", conds["B2"], 1_500_000, 5_000_000, 240, 2)
	if err != nil {
		t.Fatal(err)
	}
	if big.DataBytes <= small.DataBytes {
		t.Errorf("N=5MB usage %d <= N=50KB usage %d (paper: ~2x)", big.DataBytes, small.DataBytes)
	}
}

func TestTimeSeries(t *testing.T) {
	man := testManifest(t)
	rows, err := TimeSeries(man, netem.Constant(2_000_000), nil, 180, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d rows", len(rows))
	}
	// §7: with a stable 2 Mbit/s link the Hulu-like player converges to a
	// track encoded at <= 1 Mbit/s.
	last := rows[len(rows)-1]
	if br := man.Tracks[last.Track].Bitrate; float64(br) > 1_000_000 {
		t.Errorf("converged to track with bitrate %d > bw/2", br)
	}
	for _, r := range rows {
		if r.BufferSec < 0 {
			t.Fatalf("negative buffer: %+v", r)
		}
	}
}

// §7 infers client buffer occupancy from encrypted traffic. When the chunk
// sequence is inferred correctly, the buffer timeline reconstructed from it
// must track the one reconstructed from ground truth.
func TestInferredBufferTracksTruth(t *testing.T) {
	man := testManifest(t)
	conds, err := Conditions()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := RunPoint(man, "B1", conds["B1"], 2_000_000, 50_000, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Inferred {
		t.Fatal("behaviour not inferred via CSI")
	}
	// Re-run the same session to get both chunk sets.
	cfg := sessionConfigForTest(man, conds["B1"], 2_000_000, 50_000, 200, 9)
	res, err := session.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := core.Infer(man, res.Run.Trace, core.Params{MediaHost: man.Host})
	if err != nil {
		t.Fatal(err)
	}
	infChunks := chunksFromInference(inf, man)
	truthChunks := chunksFromTruth(res.Run.Truth)
	qc := qoe.Config{ChunkDur: man.ChunkDur, Horizon: 200}
	ri, err := qoe.Analyze(infChunks, qc)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := qoe.Analyze(truthChunks, qc)
	if err != nil {
		t.Fatal(err)
	}
	at := func(rep *qoe.Report, ts float64) float64 {
		b := 0.0
		for _, s := range rep.Buffer {
			if s.T > ts {
				break
			}
			b = s.Buffer
		}
		return b
	}
	var maxDiff float64
	for ts := 10.0; ts < 195; ts += 5 {
		d := at(ri, ts) - at(rt, ts)
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	// Download completion is estimated from the last captured data packet,
	// which precedes client-side delivery by up to the queueing delay;
	// allow a one-chunk tolerance.
	if maxDiff > man.ChunkDur+1 {
		t.Errorf("inferred buffer deviates from truth by up to %.1f s", maxDiff)
	}
}

func sessionConfigForTest(man *media.Manifest, tr *netem.BandwidthTrace, r float64, n int64, dur float64, seed int64) session.Config {
	cfg := session.Config{
		Design:    session.CH,
		Manifest:  man,
		Bandwidth: tr,
		Shaper:    &netem.TokenBucketConfig{RateBps: r, BucketSize: n},
		Duration:  dur,
		Seed:      seed,
	}
	huluSession(&cfg)
	return cfg
}
