// Benchmarks regenerating (at reduced scale) every table and figure of the
// paper's evaluation, plus the §6.2.3 analysis-time measurements. Run all:
//
//	go test -bench=. -benchmem
//
// The full-scale numbers in EXPERIMENTS.md come from `csi-paper -scale full`.
package csi_test

import (
	"sync"
	"testing"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/experiments"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/obs"
	"csi/internal/session"
)

// BenchmarkProp1SizeEstimation reproduces the §3.2 measurement: object
// downloads over HTTPS/QUIC and size estimation from encrypted captures.
func BenchmarkProp1SizeEstimation(b *testing.B) {
	sc := experiments.Quick
	sc.Reps = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Prop1(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Encode regenerates the Figure 4 per-track size ladder.
func BenchmarkFig4Encode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Uniqueness regenerates Figure 5 (unique-sequence fractions
// across PASR 1.1..2.0 and sequence lengths 1..8 at k=1%/5%).
func BenchmarkFig5Uniqueness(b *testing.B) {
	sc := experiments.Quick
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3ServiceUniqueness regenerates Table 3 (six service
// profiles, PASR and unique-sequence statistics).
func BenchmarkTable3ServiceUniqueness(b *testing.B) {
	sc := experiments.Quick
	sc.Videos = 3
	sc.Samples = 600
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTable4(b *testing.B, d session.Design) {
	b.Helper()
	sc := experiments.Quick
	sc.Traces = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(sc, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Inference* regenerate the four rows of Table 4: streaming
// sessions + inference + accuracy scoring per ABR design type.
func BenchmarkTable4InferenceCH(b *testing.B) { benchTable4(b, session.CH) }
func BenchmarkTable4InferenceSH(b *testing.B) { benchTable4(b, session.SH) }
func BenchmarkTable4InferenceCQ(b *testing.B) { benchTable4(b, session.CQ) }
func BenchmarkTable4InferenceSQ(b *testing.B) { benchTable4(b, session.SQ) }

// BenchmarkGroupsSQ regenerates the §5.3.2 traffic-group statistics.
func BenchmarkGroupsSQ(b *testing.B) {
	sc := experiments.Quick
	sc.Traces = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Groups(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Shaping regenerates the Figure 10 token-bucket sweeps.
func BenchmarkFig10Shaping(b *testing.B) {
	sc := experiments.Quick
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11TimeSeries regenerates the Figure 11 panels.
func BenchmarkFig11TimeSeries(b *testing.B) {
	sc := experiments.Quick
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHuluBasics regenerates the §7 characterization table.
func BenchmarkHuluBasics(b *testing.B) {
	sc := experiments.Quick
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HuluBasics(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations exercises the ablation variants (header discount,
// SP1-only splitting, display pruning).
func BenchmarkAblations(b *testing.B) {
	sc := experiments.Quick
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaseline compares the naive mean-size identifier against CSI.
func BenchmarkBaseline(b *testing.B) {
	sc := experiments.Quick
	sc.Traces = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Baseline(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- §6.2.3: computation time of the CSI analysis itself ----
//
// The paper reports a few seconds for a 10-minute no-MUX trace and up to
// around a minute with transport multiplexing. These benchmarks time ONLY
// core.Infer on a pre-captured 10-minute session.

type inferFixture struct {
	man *media.Manifest
	run *capture.Run
	p   core.Params
}

var (
	noMuxOnce sync.Once
	noMuxFix  inferFixture
	muxOnce   sync.Once
	muxFix    inferFixture
)

func setupInferFixture(b *testing.B, d session.Design) inferFixture {
	b.Helper()
	audio := 0
	if d.Separate() {
		audio = 1
	}
	man, err := media.Encode(media.EncodeConfig{
		Name: "bench", Seed: 55, DurationSec: 900, ChunkDur: 5,
		TargetPASR: 1.5, AudioTracks: audio,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := session.Run(session.Config{
		Design:   d,
		Manifest: man,
		Bandwidth: netem.GenerateCellular(netem.CellularConfig{
			Seed: 3, MeanBps: 6_000_000, Variability: 0.4,
		}),
		Duration: 600, // the paper's 10-minute sessions
		Seed:     3,
	})
	if err != nil {
		b.Fatal(err)
	}
	return inferFixture{
		man: man,
		run: res.Run,
		p:   core.Params{MediaHost: man.Host, Mux: d == session.SQ},
	}
}

// BenchmarkInferNoMux times CSI on a 10-minute HTTPS (SH) session.
func BenchmarkInferNoMux(b *testing.B) {
	noMuxOnce.Do(func() { noMuxFix = setupInferFixture(b, session.SH) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Infer(noMuxFix.man, noMuxFix.run.Trace, noMuxFix.p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferMux times CSI on a 10-minute QUIC-multiplexed (SQ) session.
func BenchmarkInferMux(b *testing.B) {
	muxOnce.Do(func() { muxFix = setupInferFixture(b, session.SQ) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Infer(muxFix.man, muxFix.run.Trace, muxFix.p); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- observability overhead ----
//
// The obs layer promises that a nil tracer costs one pointer check on hot
// paths. These pairs run the candidate search of the inference pipeline
// with the production default (nil tracer) and with a live collector;
// `make bench` records both (plus the sim/tcpsim pairs) in BENCH_obs.json.
// Off must match the uninstrumented BenchmarkInferNoMux within noise.

// BenchmarkInferObsOff runs the no-MUX inference with the nil tracer.
func BenchmarkInferObsOff(b *testing.B) {
	noMuxOnce.Do(func() { noMuxFix = setupInferFixture(b, session.SH) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Infer(noMuxFix.man, noMuxFix.run.Trace, noMuxFix.p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferObsOn runs the same inference with a live collector sink;
// the delta over ObsOff is the full cost of tracing the candidate search.
func BenchmarkInferObsOn(b *testing.B) {
	noMuxOnce.Do(func() { noMuxFix = setupInferFixture(b, session.SH) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := noMuxFix.p
		p.Obs = obs.New(nil, obs.NewCollector())
		if _, err := core.Infer(noMuxFix.man, noMuxFix.run.Trace, p); err != nil {
			b.Fatal(err)
		}
	}
}
