package csi_test

import (
	"fmt"

	"csi"
)

// Example runs the complete CSI loop: synthesize an asset, stream it over
// an emulated network while capturing only monitor-visible packet
// information, then infer the downloaded chunk sequence from the encrypted
// traffic and verify it against the instrumented player's ground truth.
func Example() {
	man, err := csi.Encode(csi.EncodeConfig{
		Name: "example", Seed: 1, DurationSec: 300, TargetPASR: 1.5,
	})
	if err != nil {
		panic(err)
	}
	res, err := csi.Stream(csi.SessionConfig{
		Design:    csi.CH,
		Manifest:  man,
		Bandwidth: csi.ConstantBandwidth(4_000_000),
		Duration:  90,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	inf, err := csi.Infer(man, res.Run.Trace, csi.Params{MediaHost: man.Host})
	if err != nil {
		panic(err)
	}
	best, worst, err := inf.AccuracyRange(res.Run.Truth)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sequences=%g best=%.0f%% worst=%.0f%%\n", inf.SequenceCount, 100*best, 100*worst)
	// Output: sequences=1 best=100% worst=100%
}
