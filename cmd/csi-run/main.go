// csi-run streams a video through the emulated network for one of the four
// ABR design types and writes the captured run (encrypted-traffic trace +
// instrumentation ground truth) to a JSON file for csi-analyze.
//
// Usage:
//
//	csi-run -manifest bbb15.json -design SH -bandwidth 4 -o run.json
//	csi-run -manifest bbb15.json -design SQ -cellular 7 -mean 5 -o run.json
//	csi-run -manifest bbb15.json -design CH -bandwidth 10 -shape-rate 1.5 -shape-bucket 50000 -o run.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"csi/internal/abr"
	"csi/internal/faults"
	"csi/internal/guard"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/obs"
	"csi/internal/obs/live"
	"csi/internal/pcap"
	"csi/internal/session"
)

func main() {
	var (
		manifest = flag.String("manifest", "", "manifest file (.json, .mpd or .m3u8)")
		host     = flag.String("host", "media.example.com", "media host for non-JSON manifests")
		design   = flag.String("design", "CH", "ABR design type: CH, SH, CQ or SQ")
		bw       = flag.Float64("bandwidth", 0, "stable bandwidth, Mbit/s")
		cellular = flag.Int64("cellular", 0, "generate a variable cellular trace with this seed")
		mean     = flag.Float64("mean", 5, "cellular mean bandwidth, Mbit/s")
		varia    = flag.Float64("variability", 0.4, "cellular log-variability")
		duration = flag.Float64("duration", 600, "session duration, seconds")
		algo     = flag.String("algo", "exo", "adaptation algorithm: exo, bba, bola, rate, hulu-half")
		shRate   = flag.Float64("shape-rate", 0, "token bucket rate, Mbit/s (0 = no shaping)")
		shBucket = flag.Int64("shape-bucket", 50_000, "token bucket size, bytes")
		loss     = flag.Float64("loss", 0.005, "downlink radio loss probability")
		seed     = flag.Int64("seed", 1, "run seed")
		faultStr = flag.String("faults", "", "monitor-side capture impairments, e.g. \"loss=0.01,start=5,cross=2\" (see internal/faults)")
		out      = flag.String("o", "run.json", "output run path (.bin selects the compact binary format)")
		traceOut = flag.String("trace-out", "", "write an execution trace of the session (.jsonl = JSONL events, else Chrome trace format)")
		metrics  = flag.String("metrics", "", "write a text metrics dump to this path (\"-\" = stdout)")
		serve    = flag.String("serve", "", "serve the live ops plane (/metrics, /statusz, /events, pprof) on this address; port 0 binds a free port")
	)
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "csi-run:", err)
		os.Exit(1)
	}

	if *manifest == "" {
		die(fmt.Errorf("-manifest is required"))
	}
	man, err := media.LoadManifestFile(*manifest, *host)
	if err != nil {
		die(err)
	}
	d, err := session.ParseDesign(*design)
	if err != nil {
		die(err)
	}
	a, err := abr.ByName(*algo)
	if err != nil {
		die(err)
	}
	var trace *netem.BandwidthTrace
	switch {
	case *bw > 0:
		trace = netem.Constant(*bw * 1e6)
	case *cellular != 0:
		trace = netem.GenerateCellular(netem.CellularConfig{
			Seed: *cellular, MeanBps: *mean * 1e6, Variability: *varia,
		})
	default:
		die(fmt.Errorf("one of -bandwidth or -cellular is required"))
	}
	cfg := session.Config{
		Design:    d,
		Manifest:  man,
		Algo:      a,
		Bandwidth: trace,
		Duration:  *duration,
		LossProb:  *loss,
		Seed:      *seed,
	}
	if *shRate > 0 {
		cfg.Shaper = &netem.TokenBucketConfig{RateBps: *shRate * 1e6, BucketSize: *shBucket}
	}
	var sink *obs.Collector
	var sinks []obs.Sink
	if *traceOut != "" || *metrics != "" {
		sink = obs.NewCollector()
		sinks = append(sinks, sink)
	}
	var ring *live.Ring
	if *serve != "" {
		ring = live.NewRing(4096)
		sinks = append(sinks, ring)
	}
	if fan := obs.Fanout(sinks...); fan != nil {
		cfg.Obs = obs.New(nil, fan)
	}
	if *serve != "" {
		srv, err := live.Start(live.Options{
			Addr: *serve, Program: "csi-run",
			Registry: cfg.Obs.Metrics(), Ring: ring,
		})
		if err != nil {
			die(err)
		}
		defer func() { _ = srv.Shutdown(2 * time.Second) }()
		srv.SetStatus("session", func() any {
			return map[string]any{
				"design": *design, "algo": *algo, "duration_sec": *duration, "seed": *seed,
			}
		})
		fmt.Fprintln(os.Stderr, "csi-run: ops plane on http://"+srv.Addr())
		srv.SetReady(true)
	}
	fspec, err := faults.ParseSpec(*faultStr)
	if err != nil {
		die(err)
	}
	// Contain simulator panics as typed errors so a poisoned configuration
	// reports a stack through the normal error path instead of crashing.
	run := func() (res *session.Result, err error) {
		defer guard.Capture(&err)
		return session.Run(cfg)
	}
	res, err := run()
	if err != nil {
		die(err)
	}
	if fspec.Enabled() {
		impaired, frep := faults.Apply(res.Run, fspec, cfg.Obs)
		res.Run = impaired
		fmt.Fprintf(os.Stderr, "faults [%s]: %d -> %d packets (%d window, %d loss, %d dup, %d clipped, %d cross)\n",
			fspec, frep.Input, frep.Output,
			frep.WindowDropped, frep.LossDropped, frep.Duplicated, frep.Clipped, frep.CrossPackets)
	}
	if *traceOut != "" {
		if err := obs.WriteTraceFile(*traceOut, sink.Records()); err != nil {
			die(err)
		}
	}
	if *metrics != "" {
		if err := obs.WriteMetricsFile(*metrics, cfg.Obs.Metrics()); err != nil {
			die(err)
		}
	}
	save := res.Run.SaveJSON
	switch {
	case strings.HasSuffix(*out, ".bin"):
		save = res.Run.SaveBinary
	case strings.HasSuffix(*out, ".pcap"):
		save = func(path string) error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := pcap.Write(f, res.Run.Trace); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "note: pcap output keeps only the packet trace; ground truth and display logs are dropped")
			return f.Close()
		}
	}
	if err := save(*out); err != nil {
		die(err)
	}
	fmt.Printf("wrote %s: %d packets captured, %d video + %d audio chunks downloaded, %d stalls, %.1f MB downlink\n",
		*out, len(res.Run.Trace.Packets), res.Stats.VideoChunks, res.Stats.AudioChunks,
		res.Stats.Stalls, float64(res.Stats.DownlinkBytes)/1e6)
}
