// csi-analyze runs the CSI inference on a captured run: it detects chunk
// requests in the encrypted trace, estimates sizes, matches chunk
// sequences, and reports the inferred sequence with QoE metrics. When the
// run carries ground truth (csi-run always records it), it also reports the
// best/worst-candidate accuracy of Table 4.
//
// Usage:
//
//	csi-analyze -manifest bbb15.json -run run.json
//	csi-analyze -manifest bbb15.json -run run.json -mux        # SQ designs
//	csi-analyze -manifest bbb15.json -run run.json -display    # use screen info
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/faults"
	"csi/internal/guard"
	"csi/internal/media"
	"csi/internal/obs"
	"csi/internal/obs/live"
	"csi/internal/pcap"
	"csi/internal/qoe"
)

func main() {
	var (
		manifest = flag.String("manifest", "", "manifest file (.json, .mpd or .m3u8)")
		runPath  = flag.String("run", "", "run JSON (from csi-run)")
		mux      = flag.Bool("mux", false, "transport multiplexing analysis (SQ designs)")
		display  = flag.Bool("display", false, "use displayed-chunk side information")
		host     = flag.String("host", "", "media SNI host (default: manifest host)")
		verbose  = flag.Bool("v", false, "print the full inferred sequence")
		faultStr = flag.String("faults", "", "impair the loaded capture before analysis (e.g. \"loss=0.01,cross=2\"); also enables graceful degradation")
		degrade  = flag.Bool("degrade", false, "tolerate impaired captures: degrade to a partial inference with warnings instead of failing")
		traceOut = flag.String("trace-out", "", "write an execution trace of the inference (.jsonl = JSONL events, else Chrome trace format)")
		metrics  = flag.String("metrics", "", "write a text metrics dump to this path (\"-\" = stdout)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the analysis to this path (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the analysis to this path (go tool pprof)")
		cacheMB  = flag.Int64("half-cache-mb", 0, "share MUX half enumerations across inferences through a process-wide cache of this many MiB (0 = disabled; never changes results)")
		budget   = flag.Int64("work-budget", 0, "deterministic inference step budget; exhausted runs yield a partial result with a deadline_exceeded warning (0 = unbounded)")
		deadline = flag.Float64("deadline", 0, "wall-clock inference deadline in seconds; a liveness backstop, not deterministic (0 = none)")
		serve    = flag.String("serve", "", "serve the live ops plane (/metrics, /statusz, /events, pprof) on this address; port 0 binds a free port")
	)
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "csi-analyze:", err)
		os.Exit(1)
	}
	if *manifest == "" || *runPath == "" {
		die(fmt.Errorf("-manifest and -run are required"))
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			die(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			die(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "csi-analyze:", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "csi-analyze:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "csi-analyze:", err)
			}
		}()
	}
	man, err := media.LoadManifestFile(*manifest, *host)
	if err != nil {
		die(err)
	}
	run, err := loadRun(*runPath)
	if err != nil {
		die(err)
	}
	fspec, err := faults.ParseSpec(*faultStr)
	if err != nil {
		die(err)
	}
	p := core.Params{MediaHost: *host, Mux: *mux, Degrade: *degrade || fspec.Enabled()}
	halfCache := core.NewHalfCache(*cacheMB << 20)
	p.HalfCache = halfCache
	if *budget > 0 || *deadline > 0 {
		p.Guard = guard.New(*budget).WithDeadline(guard.WallClock(), *deadline)
	}
	if p.MediaHost == "" {
		p.MediaHost = man.Host
	}
	if *display {
		p.Display = run.Display
	}
	var sink *obs.Collector
	var sinks []obs.Sink
	if *traceOut != "" || *metrics != "" {
		sink = obs.NewCollector()
		sinks = append(sinks, sink)
	}
	var ring *live.Ring
	if *serve != "" {
		ring = live.NewRing(4096)
		sinks = append(sinks, ring)
	}
	if fan := obs.Fanout(sinks...); fan != nil {
		p.Obs = obs.New(nil, fan)
	}
	if *serve != "" {
		srv, err := live.Start(live.Options{
			Addr: *serve, Program: "csi-analyze",
			Registry: p.Obs.Metrics(), Ring: ring,
			Extra: []*obs.Registry{halfCache.Registry()},
		})
		if err != nil {
			die(err)
		}
		defer func() { _ = srv.Shutdown(2 * time.Second) }()
		srv.SetStatus("analysis", func() any {
			return map[string]any{"manifest": *manifest, "run": *runPath, "mux": *mux}
		})
		p.Stages = srv.StageTimer()
		fmt.Fprintln(os.Stderr, "csi-analyze: ops plane on http://"+srv.Addr())
		srv.SetReady(true)
	}
	if fspec.Enabled() {
		impaired, frep := faults.Apply(run, fspec, p.Obs)
		run = impaired
		fmt.Printf("faults [%s]: %d -> %d packets (%d window, %d loss, %d dup, %d clipped, %d cross)\n",
			fspec, frep.Input, frep.Output,
			frep.WindowDropped, frep.LossDropped, frep.Duplicated, frep.Clipped, frep.CrossPackets)
	}
	inf, err := core.Infer(man, run.Trace, p)
	if *traceOut != "" {
		if werr := obs.WriteTraceFile(*traceOut, sink.Records()); werr != nil {
			die(werr)
		}
	}
	if *metrics != "" {
		if werr := obs.WriteMetricsFile(*metrics, p.Obs.Metrics()); werr != nil {
			die(werr)
		}
	}
	if err != nil {
		die(err)
	}

	if inf.Mux {
		fmt.Printf("QUIC transport-multiplexing analysis: %d traffic groups\n", len(inf.Groups))
	} else {
		fmt.Printf("detected %d chunk requests\n", len(inf.Requests))
	}
	fmt.Printf("matching chunk sequences: %g\n", inf.SequenceCount)
	if inf.Truncated {
		fmt.Println("note: group search hit its enumeration budget; the count is a lower bound")
	}
	for _, w := range inf.Warnings {
		fmt.Printf("warning [%s]: %s\n", w.Code, w.Detail)
	}
	if p.Degrade {
		confs := inf.Confidences()
		mean, min := 0.0, 1.0
		for _, c := range confs {
			mean += c
			if c < min {
				min = c
			}
		}
		if len(confs) > 0 {
			fmt.Printf("chunk confidence: mean %.2f, min %.2f over %d chunks\n",
				mean/float64(len(confs)), min, len(confs))
		}
	}

	if len(run.Truth) > 0 {
		best, worst, err := inf.AccuracyRange(run.Truth)
		if err != nil {
			fmt.Printf("accuracy evaluation: %v\n", err)
		} else {
			fmt.Printf("accuracy vs ground truth: best %.1f%%, worst %.1f%%\n", 100*best, 100*worst)
		}
	}

	if inf.Best != nil {
		chunks := inf.QoEChunks(man)
		if *verbose {
			for i, a := range inf.Best.Assignments {
				r := inf.Requests[i]
				switch {
				case a.Noise:
				case a.Audio:
					fmt.Printf("  req %3d t=%8.2f audio track %d\n", i, r.Time, a.AudioTrack)
				default:
					fmt.Printf("  req %3d t=%8.2f video track %d index %d (%d bytes)\n",
						i, r.Time, a.Ref.Track, a.Ref.Index, man.Size(a.Ref))
				}
			}
		}
		rep, err := qoe.Analyze(chunks, qoe.Config{ChunkDur: man.ChunkDur, TolerateGaps: p.Degrade})
		if err != nil {
			die(err)
		}
		fmt.Printf("QoE (from inferred sequence): startup %.1fs, %d stalls (%.1fs), %.1f MB data\n",
			rep.StartupDelay, len(rep.Stalls), rep.StallTime, float64(rep.DataBytes)/1e6)
		if rep.Partial {
			fmt.Printf("QoE is PARTIAL: %d chunks dropped across %d index gaps\n", rep.DroppedChunks, rep.IndexGaps)
		}
		fmt.Printf("track playback share:")
		for _, ti := range man.VideoTracks() {
			if s, ok := rep.TrackShare[ti]; ok && s > 0.001 {
				fmt.Printf(" T%d=%.1f%%", ti+1, 100*s)
			}
		}
		fmt.Println()
	}
}

// loadRun opens a run in JSON, binary or pcap format. Pcap captures carry
// only the packet trace (no instrumentation side band).
func loadRun(path string) (*capture.Run, error) {
	if strings.HasSuffix(path, ".pcap") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := pcap.Read(f, pcap.ReadConfig{})
		if err != nil {
			return nil, err
		}
		return &capture.Run{Trace: tr}, nil
	}
	return capture.LoadAny(path)
}
