// csi-monitord is the long-running monitoring daemon: it ingests an
// interleaved multi-flow frame stream (JSONL on stdin, or a recorded frame
// file) and runs the CSI inference incrementally over every flow, emitting
// one result line per finalized flow. SIGINT/SIGTERM drains gracefully:
// every live flow is flushed to a final (possibly partial) inference before
// exit.
//
// Modes:
//
//	csi-monitord -manifest m.json                      # live: frames on stdin
//	csi-monitord -manifest m.json -replay frames.jsonl # deterministic replay
//	csi-monitord -manifest m.json -batch  frames.jsonl # offline reference pipeline
//	csi-monitord -pack -o frames.jsonl a.json b.json   # record runs -> frame stream
//
// Replay and batch produce byte-identical output over the same frames (the
// repository's replay determinism gate); live mode adds wall-clock-driven
// behavior (shedding, solve deadlines) that replay deliberately excludes.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/obs"
	"csi/internal/obs/live"
	"csi/internal/stream"
	"csi/internal/stream/crashpoint"
)

func main() {
	var (
		manifest  = flag.String("manifest", "", "manifest file (.json, .mpd or .m3u8); required except with -pack")
		mux       = flag.Bool("mux", false, "transport multiplexing analysis (SQ designs)")
		host      = flag.String("host", "", "media SNI host (default: manifest host)")
		replay    = flag.String("replay", "", "replay a recorded frame stream deterministically (blocking ingest, no wall clock)")
		batch     = flag.String("batch", "", "run the offline batch pipeline over a recorded frame stream (reference for replay identity)")
		pack      = flag.Bool("pack", false, "pack capture run JSONs (args) into one interleaved frame stream")
		out       = flag.String("o", "", "output path (default stdout)")
		maxFlows  = flag.Int("max-flows", 64, "flow table cap; beyond it the least-recently-active flow is evicted to a partial result")
		memBudget = flag.Int64("flow-mem-budget", 64<<20, "per-flow buffered-bytes budget; a breaching flow is finalized early with a flow_evicted warning")
		shed      = flag.String("shed-policy", stream.ShedDrop, "ingest overload policy: drop (shed newest) or block (back-pressure)")
		ringSize  = flag.Int("ring", 4096, "ingest ring capacity (frames)")
		resolve   = flag.Int("resolve-every", 0, "re-solve a flow after this many new packets (0 = solve only at finalization)")
		budget    = flag.Int64("work-budget", 0, "deterministic per-solve guard step budget (0 = unbounded)")
		deadline  = flag.Float64("solve-deadline", 0, "wall-clock per-solve deadline seconds, live mode only (0 = none)")
		quarAfter = flag.Int("quarantine-after", 3, "park a flow after this many consecutive panicking solves (0 = never)")
		idleEvict = flag.Float64("idle-evict", 0, "evict flows idle for this many seconds of stream (virtual) time (0 = never)")
		workers   = flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
		cacheMB   = flag.Int64("half-cache-mb", 0, "share MUX half enumerations across flows through a process cache of this many MiB (0 = disabled; never changes results)")
		degrade   = flag.Bool("degrade", true, "degrade impaired flows to partial inferences with warnings instead of failing them")
		serve     = flag.String("serve", "", "serve the live ops plane (/metrics, /statusz incl. the flow table, /events, pprof) on this address")
		stateDir  = flag.String("state-dir", "", "crash-safe state directory (frame WAL + snapshots); a restart recovers and continues with byte-identical output")
		walSync   = flag.String("wal-sync", "interval", "WAL fsync policy: always, interval[:N] (every N frames, default 256) or never")
		snapEvery = flag.Int("snapshot-every", 4096, "attempt a state snapshot after this many WAL'd frames (at the next quiescent point)")
	)
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "csi-monitord:", err)
		os.Exit(1)
	}

	// Crash injection (tests and the check.sh crash matrix only): the env
	// read stays in the command so internal/stream remains clock- and
	// env-free for csi-vet.
	if err := crashpoint.Arm(os.Getenv("CSI_CRASHPOINT")); err != nil {
		die(err)
	}

	durable := *stateDir != ""
	liveMode := *replay == ""
	if durable && (*batch != "" || *pack) {
		die(fmt.Errorf("-state-dir needs the monitor (live or -replay); -batch and -pack are one-shot"))
	}

	output := io.Writer(os.Stdout)
	emitted := 0 // complete result lines already in a durable live output file
	if *out != "" {
		var f *os.File
		var err error
		if durable && liveMode {
			// The file may hold results a crashed predecessor already
			// emitted: keep them (suppressing re-emission below) and cut a
			// torn last line.
			f, emitted, err = openDurableOutput(*out)
		} else {
			f, err = os.Create(*out)
		}
		if err != nil {
			die(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "csi-monitord:", err)
			}
		}()
		output = f
	}

	if *pack {
		if err := packRuns(flag.Args(), output); err != nil {
			die(err)
		}
		return
	}
	if *manifest == "" {
		die(fmt.Errorf("-manifest is required"))
	}
	man, err := media.LoadManifestFile(*manifest, *host)
	if err != nil {
		die(err)
	}
	if *replay != "" && *batch != "" {
		die(fmt.Errorf("-replay and -batch are mutually exclusive"))
	}

	p := core.Params{MediaHost: *host, Mux: *mux, Degrade: *degrade}
	if p.MediaHost == "" {
		p.MediaHost = man.Host
	}
	halfCache := core.NewHalfCache(*cacheMB << 20)
	p.HalfCache = halfCache

	opts := stream.Options{
		Manifest:        man,
		Params:          p,
		MaxFlows:        *maxFlows,
		FlowMemBudget:   *memBudget,
		RingSize:        *ringSize,
		ShedPolicy:      *shed,
		ResolveEvery:    *resolve,
		WorkBudget:      *budget,
		QuarantineAfter: *quarAfter,
		IdleEvictSec:    *idleEvict,
		Workers:         *workers,
	}

	if *batch != "" {
		frames, err := loadFrames(*batch)
		if err != nil {
			die(err)
		}
		if err := stream.WriteResults(output, stream.Batch(frames, opts)); err != nil {
			die(err)
		}
		return
	}

	var input io.Reader = os.Stdin
	if !liveMode {
		f, err := os.Open(*replay)
		if err != nil {
			die(err)
		}
		defer f.Close()
		input = f
		// Replay is the deterministic mode: every frame is processed
		// (back-pressure, no shedding) and no wall time is read.
		opts.ShedPolicy = stream.ShedBlock
	} else {
		opts.Clock = stream.WallClock()
		opts.SolveDeadlineSec = *deadline
	}

	// The monitor's stream.* counters live in this tracer's registry; the
	// live plane serves it read-only on /metrics.
	opts.Obs = obs.New(nil, nil)
	var srv *live.Server
	if *serve != "" {
		ring := live.NewRing(4096)
		opts.Obs = obs.New(nil, ring)
		srv, err = live.Start(live.Options{
			Addr: *serve, Program: "csi-monitord",
			Registry: opts.Obs.Metrics(), Ring: ring,
			Extra: []*obs.Registry{halfCache.Registry()},
		})
		if err != nil {
			die(err)
		}
		defer func() { _ = srv.Shutdown(2 * time.Second) }()
		opts.Live = srv
		fmt.Fprintln(os.Stderr, "csi-monitord: ops plane on http://"+srv.Addr())
	}

	// Open the durability layer before the monitor: recovery needs the
	// restored-result count to dedupe the live output stream, and OnResult
	// must be in place before the WAL tail replays.
	var dur *stream.Durability
	if durable {
		policy, every, err := stream.ParseSyncPolicy(*walSync)
		if err != nil {
			die(err)
		}
		dur, err = stream.OpenDurability(*stateDir, stream.DurabilityOptions{
			SyncPolicy: policy, SyncEvery: every, SnapshotEvery: *snapEvery, Obs: opts.Obs,
		})
		if err != nil {
			die(err)
		}
	}

	// Stream each result as it commits in live mode; replay writes the
	// drained set at once (identical contents, deterministic bytes). After
	// a crash, a durable live run suppresses the results its output file
	// already holds beyond the snapshot (exactly-once to a file; stdout is
	// at-least-once).
	if liveMode {
		skip := 0
		if dur != nil {
			skip = emitted - dur.RestoredResults()
		}
		opts.OnResult = func(r stream.Result) {
			if skip > 0 {
				skip--
				return
			}
			if err := stream.WriteResults(output, []stream.Result{r}); err != nil {
				fmt.Fprintln(os.Stderr, "csi-monitord:", err)
			}
		}
	}

	var mon *stream.Monitor
	var resume uint64
	if dur != nil {
		rec := stream.Recover(dur, opts)
		mon = rec.Monitor
		if !liveMode {
			// Replay restarts the recording from the top: skip the prefix
			// the durable state covers. Live stdin continues; no skip.
			resume = rec.Resume
		}
		for _, w := range rec.Warnings {
			fmt.Fprintf(os.Stderr, "csi-monitord: recovery: %s: %s\n", w.Code, w.Detail)
		}
		if rec.Resume > 0 {
			fmt.Fprintf(os.Stderr, "csi-monitord: recovered %d frames (%d replayed from wal, %d results restored) from %s\n",
				rec.Resume, rec.Replayed, rec.RestoredResults, *stateDir)
		}
	} else {
		mon = stream.New(opts)
	}
	if srv != nil {
		srv.SetStatus("monitor", mon.Status)
		if dur != nil {
			srv.SetStatus("durability", dur.Status)
		}
		srv.SetReady(true)
	}

	// The reader feeds the monitor until EOF or a termination signal; the
	// signal path stops ingestion and drains every live flow to a final
	// partial inference.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGINT, syscall.SIGTERM)
	readErr := make(chan error, 1)
	go func() {
		fr := stream.NewFrameReader(input)
		var n uint64
		for {
			f, err := fr.Next()
			if err == io.EOF {
				readErr <- nil
				return
			}
			if err != nil {
				if durable && errors.Is(err, stream.ErrTruncatedTail) {
					// Crash-truncated recording: the valid prefix is the
					// stream. Batch mode (loadFrames) still fails on this.
					fmt.Fprintf(os.Stderr, "csi-monitord: input: %v (tolerated; end of stream)\n", err)
					readErr <- nil
					return
				}
				readErr <- err
				return
			}
			n++
			if n <= resume {
				// Replay restart: the durable state already covers this
				// prefix of the recording.
				continue
			}
			mon.Ingest(f)
		}
	}()

	var firstErr error
	select {
	case sig := <-sigC:
		fmt.Fprintf(os.Stderr, "csi-monitord: %v: draining %s\n", sig, "live flows")
	case firstErr = <-readErr:
	}
	signal.Stop(sigC)
	results := mon.Drain()
	if !liveMode {
		if err := stream.WriteResults(output, results); err != nil {
			die(err)
		}
	}
	if srv != nil {
		srv.SetReady(false)
	}
	if firstErr != nil {
		die(firstErr)
	}
}

// openDurableOutput opens a durable live run's output file preserving the
// results a crashed predecessor already wrote: a torn final line (crash
// mid-write) is cut, complete lines are counted so their re-commits can be
// suppressed, and new writes append.
func openDurableOutput(path string) (*os.File, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close()
		return nil, 0, err
	}
	complete := bytes.Count(data, []byte{'\n'})
	valid := int64(bytes.LastIndexByte(data, '\n') + 1)
	if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			_ = f.Close()
			return nil, 0, err
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, 0, err
	}
	return f, complete, nil
}

func loadFrames(path string) ([]stream.Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return stream.ReadFrames(f)
}

// packRuns merges capture run JSONs into one interleaved frame recording;
// flows are named by file base name (extension stripped).
func packRuns(paths []string, w io.Writer) error {
	if len(paths) == 0 {
		return fmt.Errorf("-pack needs capture run files as arguments")
	}
	runs := make(map[string]*capture.Trace, len(paths))
	for _, path := range paths {
		run, err := capture.LoadJSON(path)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if _, dup := runs[name]; dup {
			return fmt.Errorf("duplicate flow name %q (from %s)", name, path)
		}
		runs[name] = run.Trace
	}
	return stream.WriteFrames(w, stream.Pack(runs))
}
