// csi-monitord is the long-running monitoring daemon: it ingests an
// interleaved multi-flow frame stream (JSONL on stdin, or a recorded frame
// file) and runs the CSI inference incrementally over every flow, emitting
// one result line per finalized flow. SIGINT/SIGTERM drains gracefully:
// every live flow is flushed to a final (possibly partial) inference before
// exit.
//
// Modes:
//
//	csi-monitord -manifest m.json                      # live: frames on stdin
//	csi-monitord -manifest m.json -replay frames.jsonl # deterministic replay
//	csi-monitord -manifest m.json -batch  frames.jsonl # offline reference pipeline
//	csi-monitord -pack -o frames.jsonl a.json b.json   # record runs -> frame stream
//
// Replay and batch produce byte-identical output over the same frames (the
// repository's replay determinism gate); live mode adds wall-clock-driven
// behavior (shedding, solve deadlines) that replay deliberately excludes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/obs"
	"csi/internal/obs/live"
	"csi/internal/stream"
)

func main() {
	var (
		manifest  = flag.String("manifest", "", "manifest file (.json, .mpd or .m3u8); required except with -pack")
		mux       = flag.Bool("mux", false, "transport multiplexing analysis (SQ designs)")
		host      = flag.String("host", "", "media SNI host (default: manifest host)")
		replay    = flag.String("replay", "", "replay a recorded frame stream deterministically (blocking ingest, no wall clock)")
		batch     = flag.String("batch", "", "run the offline batch pipeline over a recorded frame stream (reference for replay identity)")
		pack      = flag.Bool("pack", false, "pack capture run JSONs (args) into one interleaved frame stream")
		out       = flag.String("o", "", "output path (default stdout)")
		maxFlows  = flag.Int("max-flows", 64, "flow table cap; beyond it the least-recently-active flow is evicted to a partial result")
		memBudget = flag.Int64("flow-mem-budget", 64<<20, "per-flow buffered-bytes budget; a breaching flow is finalized early with a flow_evicted warning")
		shed      = flag.String("shed-policy", stream.ShedDrop, "ingest overload policy: drop (shed newest) or block (back-pressure)")
		ringSize  = flag.Int("ring", 4096, "ingest ring capacity (frames)")
		resolve   = flag.Int("resolve-every", 0, "re-solve a flow after this many new packets (0 = solve only at finalization)")
		budget    = flag.Int64("work-budget", 0, "deterministic per-solve guard step budget (0 = unbounded)")
		deadline  = flag.Float64("solve-deadline", 0, "wall-clock per-solve deadline seconds, live mode only (0 = none)")
		quarAfter = flag.Int("quarantine-after", 3, "park a flow after this many consecutive panicking solves (0 = never)")
		idleEvict = flag.Float64("idle-evict", 0, "evict flows idle for this many seconds of stream (virtual) time (0 = never)")
		workers   = flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
		cacheMB   = flag.Int64("half-cache-mb", 0, "share MUX half enumerations across flows through a process cache of this many MiB (0 = disabled; never changes results)")
		degrade   = flag.Bool("degrade", true, "degrade impaired flows to partial inferences with warnings instead of failing them")
		serve     = flag.String("serve", "", "serve the live ops plane (/metrics, /statusz incl. the flow table, /events, pprof) on this address")
	)
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "csi-monitord:", err)
		os.Exit(1)
	}

	output := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "csi-monitord:", err)
			}
		}()
		output = f
	}

	if *pack {
		if err := packRuns(flag.Args(), output); err != nil {
			die(err)
		}
		return
	}
	if *manifest == "" {
		die(fmt.Errorf("-manifest is required"))
	}
	man, err := media.LoadManifestFile(*manifest, *host)
	if err != nil {
		die(err)
	}
	if *replay != "" && *batch != "" {
		die(fmt.Errorf("-replay and -batch are mutually exclusive"))
	}

	p := core.Params{MediaHost: *host, Mux: *mux, Degrade: *degrade}
	if p.MediaHost == "" {
		p.MediaHost = man.Host
	}
	halfCache := core.NewHalfCache(*cacheMB << 20)
	p.HalfCache = halfCache

	opts := stream.Options{
		Manifest:        man,
		Params:          p,
		MaxFlows:        *maxFlows,
		FlowMemBudget:   *memBudget,
		RingSize:        *ringSize,
		ShedPolicy:      *shed,
		ResolveEvery:    *resolve,
		WorkBudget:      *budget,
		QuarantineAfter: *quarAfter,
		IdleEvictSec:    *idleEvict,
		Workers:         *workers,
	}

	if *batch != "" {
		frames, err := loadFrames(*batch)
		if err != nil {
			die(err)
		}
		if err := stream.WriteResults(output, stream.Batch(frames, opts)); err != nil {
			die(err)
		}
		return
	}

	liveMode := *replay == ""
	var input io.Reader = os.Stdin
	if !liveMode {
		f, err := os.Open(*replay)
		if err != nil {
			die(err)
		}
		defer f.Close()
		input = f
		// Replay is the deterministic mode: every frame is processed
		// (back-pressure, no shedding) and no wall time is read.
		opts.ShedPolicy = stream.ShedBlock
	} else {
		opts.Clock = stream.WallClock()
		opts.SolveDeadlineSec = *deadline
	}

	// The monitor's stream.* counters live in this tracer's registry; the
	// live plane serves it read-only on /metrics.
	opts.Obs = obs.New(nil, nil)
	var srv *live.Server
	if *serve != "" {
		ring := live.NewRing(4096)
		opts.Obs = obs.New(nil, ring)
		srv, err = live.Start(live.Options{
			Addr: *serve, Program: "csi-monitord",
			Registry: opts.Obs.Metrics(), Ring: ring,
			Extra: []*obs.Registry{halfCache.Registry()},
		})
		if err != nil {
			die(err)
		}
		defer func() { _ = srv.Shutdown(2 * time.Second) }()
		opts.Live = srv
		fmt.Fprintln(os.Stderr, "csi-monitord: ops plane on http://"+srv.Addr())
	}

	// Stream each result as it commits in live mode; replay writes the
	// drained set at once (identical contents, deterministic bytes).
	if liveMode {
		opts.OnResult = func(r stream.Result) {
			if err := stream.WriteResults(output, []stream.Result{r}); err != nil {
				fmt.Fprintln(os.Stderr, "csi-monitord:", err)
			}
		}
	}

	mon := stream.New(opts)
	if srv != nil {
		srv.SetStatus("monitor", mon.Status)
		srv.SetReady(true)
	}

	// The reader feeds the monitor until EOF or a termination signal; the
	// signal path stops ingestion and drains every live flow to a final
	// partial inference.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGINT, syscall.SIGTERM)
	readErr := make(chan error, 1)
	go func() {
		fr := stream.NewFrameReader(input)
		for {
			f, err := fr.Next()
			if err == io.EOF {
				readErr <- nil
				return
			}
			if err != nil {
				readErr <- err
				return
			}
			mon.Ingest(f)
		}
	}()

	var firstErr error
	select {
	case sig := <-sigC:
		fmt.Fprintf(os.Stderr, "csi-monitord: %v: draining %s\n", sig, "live flows")
	case firstErr = <-readErr:
	}
	signal.Stop(sigC)
	results := mon.Drain()
	if !liveMode {
		if err := stream.WriteResults(output, results); err != nil {
			die(err)
		}
	}
	if srv != nil {
		srv.SetReady(false)
	}
	if firstErr != nil {
		die(firstErr)
	}
}

func loadFrames(path string) ([]stream.Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return stream.ReadFrames(f)
}

// packRuns merges capture run JSONs into one interleaved frame recording;
// flows are named by file base name (extension stripped).
func packRuns(paths []string, w io.Writer) error {
	if len(paths) == 0 {
		return fmt.Errorf("-pack needs capture run files as arguments")
	}
	runs := make(map[string]*capture.Trace, len(paths))
	for _, path := range paths {
		run, err := capture.LoadJSON(path)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if _, dup := runs[name]; dup {
			return fmt.Errorf("duplicate flow name %q (from %s)", name, path)
		}
		runs[name] = run.Trace
	}
	return stream.WriteFrames(w, stream.Pack(runs))
}
