// Command csi-vet runs the repository's static-analysis suite: repo-specific
// determinism and inference-correctness rules that ordinary go vet cannot
// know about, including the interprocedural taint and concurrency rules
// built on the module-wide call graph. It exits nonzero when any rule fires.
//
// Usage:
//
//	csi-vet [flags] [packages]
//
// Packages are module-relative patterns ("./...", "internal/core",
// "internal/..."); the default is "./...". Scopes and allowlists come from
// built-in policy (internal/analysis.DefaultConfig) merged with the
// module's .csi-vet.conf. See DESIGN.md "Correctness tooling".
//
// Flags:
//
//	-list            list registered rules and exit
//	-rules a,b       run only the named rules
//	-format f        output format: text (default), json, or sarif
//	-json            shorthand for -format json
//	-strict-ignores  fail (exit 1) when a suppression is stale
//	-parallel n      per-package analysis workers (default GOMAXPROCS)
//
// Exit status is 0 when clean, 1 on findings (or stale suppressions under
// -strict-ignores), 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"csi/internal/analysis"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list registered rules and exit")
		rules    = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		format   = flag.String("format", "text", "output format: text, json, or sarif")
		jsonFlag = flag.Bool("json", false, "shorthand for -format json")
		strict   = flag.Bool("strict-ignores", false, "exit nonzero when a suppression no longer suppresses anything")
		parallel = flag.Int("parallel", 0, "per-package analysis workers (default GOMAXPROCS)")
	)
	flag.Parse()
	if *jsonFlag {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "csi-vet: unknown format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, az := range analysis.All {
			fmt.Printf("%-12s %s\n", az.Name, az.Doc)
		}
		return
	}

	azs := analysis.All
	if *rules != "" {
		var unknown []string
		azs, unknown = analysis.ByName(strings.Split(*rules, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "csi-vet: unknown rules: %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modDir, _, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	cfg, err := analysis.LoadConfig(modDir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadModule(wd, flag.Args())
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "csi-vet: no packages match %v\n", flag.Args())
		os.Exit(2)
	}

	res := analysis.Run(analysis.NewModule(pkgs), azs, cfg, *parallel)

	switch *format {
	case "json":
		writeJSON(os.Stdout, azs, res)
	case "sarif":
		writeSARIF(os.Stdout, azs, res)
	default:
		for _, d := range res.Diags {
			fmt.Println(d)
		}
		for _, d := range res.Stale {
			fmt.Println(d)
		}
	}

	fail := len(res.Diags) > 0
	if *strict && len(res.Stale) > 0 {
		fail = true
	}
	if fail {
		fmt.Fprintf(os.Stderr, "csi-vet: %d finding(s), %d stale suppression(s)\n", len(res.Diags), len(res.Stale))
		os.Exit(1)
	}
	if len(res.Stale) > 0 {
		fmt.Fprintf(os.Stderr, "csi-vet: %d stale suppression(s) (run with -strict-ignores to fail)\n", len(res.Stale))
	}
}

// finding is the machine-readable shape of one diagnostic.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func toFindings(diags []analysis.Diagnostic) []finding {
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, finding{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Msg,
		})
	}
	return out
}

// report is the top-level -format json document: the findings, the stale
// suppressions, and the full audited suppression inventory. check.sh
// archives it as csi-vet.json so CI diffs findings structurally.
type report struct {
	Schema       string                       `json:"schema"`
	Rules        []string                     `json:"rules"`
	Findings     []finding                    `json:"findings"`
	Stale        []finding                    `json:"stale"`
	Suppressions []analysis.SuppressionRecord `json:"suppressions"`
}

func writeJSON(w io.Writer, azs []*analysis.Analyzer, res *analysis.Result) {
	doc := report{
		Schema:       "csi-vet/v2",
		Rules:        ruleNames(azs),
		Findings:     toFindings(res.Diags),
		Stale:        toFindings(res.Stale),
		Suppressions: res.Suppressions,
	}
	if doc.Suppressions == nil {
		doc.Suppressions = []analysis.SuppressionRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// Minimal SARIF 2.1.0 so the findings plug into code-scanning UIs.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, azs []*analysis.Analyzer, res *analysis.Result) {
	driver := sarifDriver{Name: "csi-vet"}
	for _, az := range azs {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               az.Name,
			ShortDescription: sarifMessage{Text: az.Doc},
		})
	}
	results := []sarifResult{}
	emit := func(diags []analysis.Diagnostic, level string) {
		for _, d := range diags {
			results = append(results, sarifResult{
				RuleID:  d.Rule,
				Level:   level,
				Message: sarifMessage{Text: d.Msg},
				Locations: []sarifLocation{{
					PhysicalLocation: sarifPhysical{
						ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
						Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
					},
				}},
			})
		}
	}
	emit(res.Diags, "error")
	emit(res.Stale, "warning")
	doc := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func ruleNames(azs []*analysis.Analyzer) []string {
	names := make([]string, 0, len(azs))
	for _, az := range azs {
		names = append(names, az.Name)
	}
	return names
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "csi-vet: %v\n", err)
	os.Exit(2)
}
