// Command csi-vet runs the repository's static-analysis suite: repo-specific
// determinism and inference-correctness rules that ordinary go vet cannot
// know about. It exits nonzero when any rule fires.
//
// Usage:
//
//	csi-vet [flags] [packages]
//
// Packages are module-relative patterns ("./...", "internal/core",
// "internal/..."); the default is "./...". Scopes and allowlists come from
// built-in policy (internal/analysis.DefaultConfig) merged with the
// module's .csi-vet.conf. See DESIGN.md "Correctness tooling".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"csi/internal/analysis"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list registered rules and exit")
		rules = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	)
	flag.Parse()

	if *list {
		for _, az := range analysis.All {
			fmt.Printf("%-12s %s\n", az.Name, az.Doc)
		}
		return
	}

	azs := analysis.All
	if *rules != "" {
		var unknown []string
		azs, unknown = analysis.ByName(strings.Split(*rules, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "csi-vet: unknown rules: %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modDir, _, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	cfg, err := analysis.LoadConfig(modDir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadModule(wd, flag.Args())
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "csi-vet: no packages match %v\n", flag.Args())
		os.Exit(2)
	}

	diags := analysis.RunAnalyzers(pkgs, azs, cfg)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "csi-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "csi-vet: %v\n", err)
	os.Exit(2)
}
