// csi-paper regenerates every table and figure of the paper's evaluation
// (see DESIGN.md for the experiment index).
//
// Usage:
//
//	csi-paper -scale quick all
//	csi-paper -scale full table4
//	csi-paper prop1 fig5 table3
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"csi/internal/core"
	"csi/internal/experiments"
	"csi/internal/obs"
	"csi/internal/obs/live"
	"csi/internal/session"
)

func main() {
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	traceOut := flag.String("trace-out", "", "write an execution trace of the experiments (.jsonl = JSONL events, else Chrome trace format); runs execute concurrently, so record order is not deterministic")
	metrics := flag.String("metrics", "", "write an aggregate text metrics dump to this path (\"-\" = stdout)")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this path (go tool pprof)")
	memProf := flag.String("memprofile", "", "write a heap profile taken after the experiments to this path (go tool pprof)")
	cacheMB := flag.Int64("half-cache-mb", 0, "share MUX half enumerations across the sweep's inferences through a process-wide cache of this many MiB (0 = disabled; never changes results)")
	budget := flag.Int64("work-budget", 0, "deterministic per-run inference step budget; exhausted runs degrade to partial inferences (0 = unbounded)")
	deadline := flag.Float64("deadline", 0, "wall-clock deadline per run in seconds; a liveness backstop, not deterministic (0 = none)")
	retries := flag.Int("retries", 0, "re-attempts per failed run (panics and cancellations are never retried)")
	quarantine := flag.Int("quarantine-after", 0, "skip a run after this many consecutive failures (0 = disabled)")
	serve := flag.String("serve", "", "serve the live ops plane (/metrics, /statusz, /events, pprof) on this address, e.g. 127.0.0.1:8080; port 0 binds a free port")
	serveAddrFile := flag.String("serve-addr-file", "", "write the bound -serve address to this file (for scripts using port 0)")
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csi-paper:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "csi-paper:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "csi-paper:", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "csi-paper:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "csi-paper:", err)
			}
		}()
	}
	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintln(os.Stderr, "csi-paper: unknown scale", *scale)
		os.Exit(1)
	}
	var sink *obs.Collector
	if *traceOut != "" || *metrics != "" {
		sink = obs.NewCollector()
	}
	var ring *live.Ring
	var sinks []obs.Sink
	if sink != nil {
		sinks = append(sinks, sink)
	}
	if *serve != "" {
		ring = live.NewRing(4096)
		sinks = append(sinks, ring)
	}
	if fan := obs.Fanout(sinks...); fan != nil {
		sc.Obs = obs.New(nil, fan)
	}
	sc.WorkBudget = *budget
	sc.DeadlineSec = *deadline
	sc.Retries = *retries
	sc.QuarantineAfter = *quarantine
	sc.HalfCache = core.NewHalfCache(*cacheMB << 20)

	// -serve: start the live ops plane. It only ever reads snapshots of the
	// experiment registry, so -metrics/-trace-out outputs stay byte-identical
	// with and without it.
	var srv *live.Server
	var current sync.Map // "experiment" -> name
	if *serve != "" {
		var err error
		srv, err = live.Start(live.Options{
			Addr: *serve, Program: "csi-paper",
			Registry: sc.Obs.Metrics(), Ring: ring,
			Extra: []*obs.Registry{sc.HalfCache.Registry()},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "csi-paper:", err)
			os.Exit(1)
		}
		defer func() {
			if err := srv.Shutdown(2 * time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "csi-paper: ops shutdown:", err)
			}
		}()
		srv.SetStatus("guard", func() any {
			return map[string]any{
				"work_budget": *budget, "deadline_sec": *deadline,
				"retries": *retries, "quarantine_after": *quarantine,
			}
		})
		srv.SetStatus("run", func() any {
			doc := map[string]any{"scale": *scale}
			if name, ok := current.Load("experiment"); ok {
				doc["experiment"] = name
			}
			return doc
		})
		sc.Stages = srv.StageTimer()
		if *serveAddrFile != "" {
			if err := os.WriteFile(*serveAddrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "csi-paper:", err)
				os.Exit(1)
			}
		}
		fmt.Fprintln(os.Stderr, "csi-paper: ops plane on http://"+srv.Addr())
		srv.SetReady(true)
	}

	// First SIGINT drains gracefully: in-flight runs are cancelled via their
	// guards and whatever completed still renders. A second SIGINT kills the
	// process the default way.
	stop := make(chan struct{})
	sc.Interrupt = stop
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt)
	go func() {
		<-sigC
		fmt.Fprintln(os.Stderr, "csi-paper: interrupt — draining (interrupt again to kill)")
		close(stop)
		signal.Stop(sigC)
	}()

	names := flag.Args()
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = []string{"prop1", "fig4", "fig5", "table3", "table4", "groups", "fig10", "fig11", "hulu", "ablations", "baseline", "timing"}
	}
	for _, name := range names {
		current.Store("experiment", name)
		start := time.Now()
		var tab *experiments.Table
		var err error
		switch name {
		case "prop1":
			tab, err = experiments.Prop1(sc)
		case "fig4":
			tab, err = experiments.Fig4()
		case "fig5":
			tab, err = experiments.Fig5(sc)
		case "table3":
			tab, err = experiments.Table3(sc)
		case "table4":
			tab, err = experiments.Table4(sc)
		case "table4-ch":
			tab, err = experiments.Table4(sc, session.CH)
		case "table4-sh":
			tab, err = experiments.Table4(sc, session.SH)
		case "table4-cq":
			tab, err = experiments.Table4(sc, session.CQ)
		case "table4-sq":
			tab, err = experiments.Table4(sc, session.SQ)
		case "groups":
			tab, err = experiments.Groups(sc)
		case "fig10":
			tab, err = experiments.Fig10(sc)
		case "fig11":
			tab, err = experiments.Fig11(sc)
		case "hulu":
			tab, err = experiments.HuluBasics(sc)
		case "ablations":
			tab, err = experiments.Ablations(sc)
		case "baseline":
			tab, err = experiments.Baseline(sc)
		case "timing":
			tab, err = experiments.Timing(sc)
		case "faults":
			// The degradation sweep is not part of "all": it replays every
			// session once per impairment level, which multiplies runtime.
			tab, err = experiments.FaultSweep(sc, nil)
		case "faults-sh":
			tab, err = experiments.FaultSweep(sc, nil, session.SH)
		case "faults-sq":
			tab, err = experiments.FaultSweep(sc, nil, session.SQ)
		default:
			fmt.Fprintln(os.Stderr, "csi-paper: unknown experiment", name)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "csi-paper: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(tab.String())
		fmt.Printf("[%s completed in %.1fs]\n\n", name, time.Since(start).Seconds())
	}
	if *traceOut != "" {
		if err := obs.WriteTraceFile(*traceOut, sink.Records()); err != nil {
			fmt.Fprintln(os.Stderr, "csi-paper:", err)
			os.Exit(1)
		}
	}
	if *metrics != "" {
		if err := obs.WriteMetricsFile(*metrics, sc.Obs.Metrics()); err != nil {
			fmt.Fprintln(os.Stderr, "csi-paper:", err)
			os.Exit(1)
		}
	}
}
