// csi-encode synthesizes ABR manifests: either a single encode with a
// target PASR (substituting for the paper's FFmpeg three-pass encodes of
// Big Buck Bunny, §3.3) or a sample of a service's catalogue profile
// (Table 3).
//
// Usage:
//
//	csi-encode -pasr 1.5 -duration 600 -audio -o bbb15.json
//	csi-encode -service Youtube -o yt.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"csi/internal/media"
)

func writeManifest(man *media.Manifest, format, out string) error {
	switch format {
	case "json":
		return man.SaveJSON(out)
	case "dash":
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := media.WriteMPD(f, man); err != nil {
			return err
		}
		return f.Close()
	case "hls":
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		mf, err := os.Create(filepath.Join(out, "master.m3u8"))
		if err != nil {
			return err
		}
		if err := media.WriteHLSMaster(mf, man); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		for ti := range man.Tracks {
			name := fmt.Sprintf("%s-%d.m3u8", man.Tracks[ti].Kind, man.Tracks[ti].ID)
			tf, err := os.Create(filepath.Join(out, name))
			if err != nil {
				return err
			}
			if err := media.WriteHLSMedia(tf, man, ti); err != nil {
				tf.Close()
				return err
			}
			if err := tf.Close(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func main() {
	var (
		pasr     = flag.Float64("pasr", 1.5, "target peak-to-average size ratio per track")
		duration = flag.Float64("duration", 600, "video duration, seconds")
		chunkDur = flag.Float64("chunk", 5, "chunk duration, seconds")
		audio    = flag.Bool("audio", false, "include a separate CBR audio track (S designs)")
		seed     = flag.Int64("seed", 1, "encoder seed")
		service  = flag.String("service", "", "sample one video from a Table-3 service profile (Amazon, Facebook, HBO Now, Hulu, Vudu, Youtube)")
		name     = flag.String("name", "asset", "asset name")
		format   = flag.String("format", "json", "output format: json, dash (MPD) or hls (playlist set)")
		out      = flag.String("o", "manifest.json", "output path (hls: directory prefix)")
	)
	flag.Parse()

	var man *media.Manifest
	var err error
	if *service != "" {
		var svc media.ServiceProfile
		svc, err = media.ServiceByName(*service)
		if err == nil {
			var vids []*media.Manifest
			vids, err = svc.SampleVideos(*seed, 1, 0)
			if err == nil {
				man = vids[0]
			}
		}
	} else {
		audioTracks := 0
		if *audio {
			audioTracks = 1
		}
		man, err = media.Encode(media.EncodeConfig{
			Name:        *name,
			Seed:        *seed,
			DurationSec: *duration,
			ChunkDur:    *chunkDur,
			TargetPASR:  *pasr,
			AudioTracks: audioTracks,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csi-encode:", err)
		os.Exit(1)
	}
	if err := writeManifest(man, *format, *out); err != nil {
		fmt.Fprintln(os.Stderr, "csi-encode:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d video tracks, %d audio tracks, %d chunks, median PASR %.2f\n",
		*out, len(man.VideoTracks()), len(man.AudioTracks()), man.NumVideoChunks(), man.MedianPASR())
}
