// csi-trace inspects a captured run: per-connection summaries, the detected
// chunk-request timeline, and (for QUIC multiplexing) the SP1/SP2 traffic
// groups. It is the debugging companion to csi-analyze.
//
// Usage:
//
//	csi-trace -run run.json
//	csi-trace -run run.bin -host media.example.com -requests
//	csi-trace -run run.bin -host media.example.com -mux
//	csi-trace -timeline run.trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/obs"
	"csi/internal/packet"
	"csi/internal/pcap"
)

func main() {
	var (
		runPath  = flag.String("run", "", "run file (.json or .bin)")
		host     = flag.String("host", "", "media host for request/group analysis")
		requests = flag.Bool("requests", false, "print the detected request timeline")
		mux      = flag.Bool("mux", false, "print SP1/SP2 traffic groups (QUIC multiplexing)")
		timeline = flag.String("timeline", "", "render a JSONL event log (csi-run/-analyze -trace-out x.jsonl) as a text timeline")
	)
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "csi-trace:", err)
		os.Exit(1)
	}
	if *timeline != "" {
		f, err := os.Open(*timeline)
		if err != nil {
			die(err)
		}
		defer f.Close()
		recs, err := obs.ReadJSONEvents(f)
		if err != nil {
			die(err)
		}
		if err := obs.WriteTimeline(os.Stdout, recs); err != nil {
			die(err)
		}
		return
	}
	if *runPath == "" {
		die(fmt.Errorf("-run is required"))
	}
	run, err := loadRun(*runPath)
	if err != nil {
		die(err)
	}
	tr := run.Trace

	// Per-connection summary.
	type connSummary struct {
		id                 int
		proto              packet.Proto
		pkts               int
		upBytes, downBytes int64
		first, last        float64
	}
	sums := map[int]*connSummary{}
	for _, v := range tr.Packets {
		s, ok := sums[v.ConnID]
		if !ok {
			s = &connSummary{id: v.ConnID, proto: v.Proto, first: v.Time}
			sums[v.ConnID] = s
		}
		s.pkts++
		s.last = v.Time
		if v.Dir == packet.Up {
			s.upBytes += v.Size
		} else {
			s.downBytes += v.Size
		}
	}
	var ids []int
	for id := range sums {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Printf("%d packets, %d connections\n\n", len(tr.Packets), len(ids))
	fmt.Printf("%-5s %-5s %-28s %-16s %9s %12s %12s %9s\n",
		"conn", "proto", "sni", "server ip", "packets", "up bytes", "down bytes", "dur s")
	for _, id := range ids {
		s := sums[id]
		fmt.Printf("%-5d %-5s %-28s %-16s %9d %12d %12d %9.1f\n",
			id, s.proto, tr.SNI[id], tr.ServerIP[id], s.pkts, s.upBytes, s.downBytes, s.last-s.first)
	}
	if len(tr.DNS) > 0 {
		fmt.Println("\nDNS associations:")
		var dnsIPs []string
		for ip := range tr.DNS {
			dnsIPs = append(dnsIPs, ip)
		}
		sort.Strings(dnsIPs)
		for _, ip := range dnsIPs {
			fmt.Printf("  %-16s -> %s\n", ip, tr.DNS[ip])
		}
	}

	if !*requests && !*mux {
		return
	}
	if *host == "" {
		die(fmt.Errorf("-host is required for -requests/-mux"))
	}
	est, err := core.Estimate(tr, core.Params{MediaHost: *host, Mux: *mux})
	if err != nil {
		die(err)
	}
	if *mux {
		fmt.Printf("\n%d traffic groups:\n", len(est.Groups))
		fmt.Printf("%-4s %10s %10s %6s %12s\n", "grp", "start", "end", "reqs", "est bytes")
		for gi, g := range est.Groups {
			fmt.Printf("%-4d %10.2f %10.2f %6d %12d\n", gi, g.Start, g.End, len(g.ReqTimes), g.Est)
		}
		return
	}
	fmt.Printf("\n%d detected requests:\n", len(est.Requests))
	fmt.Printf("%-4s %10s %-5s %12s %10s\n", "req", "time", "conn", "est bytes", "done")
	for i, r := range est.Requests {
		fmt.Printf("%-4d %10.2f %-5d %12d %10.2f\n", i, r.Time, r.Conn, r.Est, r.LastData)
	}
}

// loadRun opens a run in JSON, binary or pcap format. Pcap captures carry
// only the packet trace (no instrumentation side band).
func loadRun(path string) (*capture.Run, error) {
	if strings.HasSuffix(path, ".pcap") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := pcap.Read(f, pcap.ReadConfig{})
		if err != nil {
			return nil, err
		}
		return &capture.Run{Trace: tr}, nil
	}
	return capture.LoadAny(path)
}
