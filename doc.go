// Package csi is a self-contained reproduction of "CSI: Inferring Mobile
// ABR Video Adaptation Behavior under HTTPS and QUIC" (EuroSys 2020).
//
// CSI infers, from encrypted network traffic alone — packet sizes and
// timing — exactly which ABR video chunks a closed-source player
// downloaded: the track, the playback index, audio vs video, and when. It
// works because chunk sizes act as fingerprints (Property 1: encrypted
// traffic over-estimates object sizes by at most ~1% for HTTPS and ~5% for
// QUIC) and playback indexes grow contiguously (Property 2), so a short
// run of estimated sizes pins down the exact chunk sequence via a graph
// search.
//
// This module bundles everything needed to exercise the system end to end
// with no external dependencies: a synthetic VBR encoder, a discrete-event
// network simulator with mini-TCP/TLS and mini-QUIC stacks, an ABR player
// with several adaptation algorithms, a token-bucket shaper, the CSI
// inference engine itself, and drivers reproducing every table and figure
// of the paper's evaluation.
//
// The root package is a thin facade; see the quickstart:
//
//	man, _ := csi.Encode(csi.EncodeConfig{TargetPASR: 1.5})
//	res, _ := csi.Stream(csi.SessionConfig{
//		Design:    csi.CH,
//		Manifest:  man,
//		Bandwidth: csi.ConstantBandwidth(4_000_000),
//	})
//	inf, _ := csi.Infer(man, res.Run.Trace, csi.Params{MediaHost: man.Host})
//	best, worst, _ := inf.AccuracyRange(res.Run.Truth)
package csi
