package csi_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/obs"
	"csi/internal/session"
)

var updateObsGolden = flag.Bool("update", false, "rewrite the testdata/obs golden files")

// The obs determinism contract: a fixed-seed single-threaded run produces
// byte-identical trace and metrics exports, run after run. This test pins
// both halves of the pipeline — a streamed SH session (virtual-time clock)
// and the inference over its capture (StepClock ordinal timeline) — against
// committed goldens, and additionally re-executes each half to prove
// run-to-run identity independent of the golden files.

func goldenManifest(t *testing.T) *media.Manifest {
	t.Helper()
	man, err := media.Encode(media.EncodeConfig{
		Name: "golden", Seed: 7, DurationSec: 300, ChunkDur: 5,
		TargetPASR: 1.5, AudioTracks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return man
}

// goldenSession streams the fixture with a fresh collector and returns the
// Chrome trace document, the metrics dump, and the session result.
func goldenSession(t *testing.T, man *media.Manifest) ([]byte, []byte, *session.Result) {
	t.Helper()
	sink := obs.NewCollector()
	tr := obs.New(nil, sink)
	res, err := session.Run(session.Config{
		Design: session.SH, Manifest: man,
		Bandwidth: netem.Constant(4_000_000),
		Duration:  90, Seed: 7,
		Obs: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace, metrics bytes.Buffer
	if err := obs.WriteChromeTrace(&trace, sink.Records(), obs.ChromeTraceOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Metrics().WriteText(&metrics); err != nil {
		t.Fatal(err)
	}
	return trace.Bytes(), metrics.Bytes(), res
}

// goldenInfer runs CSI inference over the captured run with a fresh tracer
// and returns the JSONL event log and metrics dump.
func goldenInfer(t *testing.T, man *media.Manifest, res *session.Result) ([]byte, []byte) {
	t.Helper()
	sink := obs.NewCollector()
	p := core.Params{MediaHost: man.Host, Obs: obs.New(nil, sink)}
	if _, err := core.Infer(man, res.Run.Trace, p); err != nil {
		t.Fatal(err)
	}
	var trace, metrics bytes.Buffer
	if err := obs.WriteJSONEvents(&trace, sink.Records()); err != nil {
		t.Fatal(err)
	}
	if err := p.Obs.Metrics().WriteText(&metrics); err != nil {
		t.Fatal(err)
	}
	return trace.Bytes(), metrics.Bytes()
}

func checkObsGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "obs", name)
	if *updateObsGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from committed golden (%d vs %d bytes); if the change is intended, re-run with -update", name, len(got), len(want))
	}
}

func TestObsGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a 90-second session twice")
	}
	man := goldenManifest(t)

	trace1, metrics1, res := goldenSession(t, man)
	trace2, metrics2, _ := goldenSession(t, man)
	if !bytes.Equal(trace1, trace2) {
		t.Error("same-seed session runs produced different Chrome traces")
	}
	if !bytes.Equal(metrics1, metrics2) {
		t.Error("same-seed session runs produced different metrics dumps")
	}
	checkObsGolden(t, "session.trace.json", trace1)
	checkObsGolden(t, "session.metrics.txt", metrics1)

	infTrace1, infMetrics1 := goldenInfer(t, man, res)
	infTrace2, infMetrics2 := goldenInfer(t, man, res)
	if !bytes.Equal(infTrace1, infTrace2) {
		t.Error("repeated inference produced different event logs")
	}
	if !bytes.Equal(infMetrics1, infMetrics2) {
		t.Error("repeated inference produced different metrics dumps")
	}
	checkObsGolden(t, "infer.trace.jsonl", infTrace1)
	checkObsGolden(t, "infer.metrics.txt", infMetrics1)
}
