# Developer entry points. `make check` is the single pre-merge gate.

.PHONY: check build test vet race bench

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...
	go run ./cmd/csi-vet -strict-ignores ./...

race:
	go test -race ./...

# Observability-overhead pairs (nil tracer vs live collector) land in
# BENCH_obs.json; core candidate-search before/after pairs (parallel kernel
# vs serial reference) land in BENCH_core.json; sustained session throughput
# (serial + parallel streams) lands in BENCH_throughput.json.
bench:
	./scripts/bench_obs.sh
	./scripts/bench_core.sh
	./scripts/bench_throughput.sh
