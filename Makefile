# Developer entry points. `make check` is the single pre-merge gate.

.PHONY: check build test vet race bench

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...
	go run ./cmd/csi-vet ./...

race:
	go test -race ./...

# Observability-overhead pairs (nil tracer vs live collector); results land
# in BENCH_obs.json.
bench:
	./scripts/bench_obs.sh
