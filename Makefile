# Developer entry points. `make check` is the single pre-merge gate.

.PHONY: check build test vet race

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...
	go run ./cmd/csi-vet ./...

race:
	go test -race ./...
