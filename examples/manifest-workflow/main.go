// Manifest workflow: how CSI gathers the per-chunk size ladder in advance
// of a test (§4.1 of the paper).
//
// Many manifests carry every chunk's exact size (DASH mediaRange byte
// ranges, HLS EXT-X-BYTERANGE); for URL-only manifests CSI issues HTTP HEAD
// requests per chunk. This example writes an asset out as DASH and HLS,
// reads both back, strips the DASH byte ranges to force the HEAD fallback,
// and verifies all three paths reconstruct the identical ladder.
//
// Run with: go run ./examples/manifest-workflow
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"regexp"
	"strings"

	"csi/internal/media"
)

func main() {
	man, err := media.Encode(media.EncodeConfig{
		Name: "workflow", Seed: 12, DurationSec: 120, TargetPASR: 1.5, AudioTracks: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("asset: %d tracks x %d chunks\n\n", len(man.Tracks), man.NumVideoChunks())

	// --- DASH with byte ranges: sizes come straight from the MPD.
	var mpd bytes.Buffer
	if err := media.WriteMPD(&mpd, man); err != nil {
		log.Fatal(err)
	}
	fromDASH, err := media.ParseMPD(bytes.NewReader(mpd.Bytes()), man.Name, man.Host, nil)
	if err != nil {
		log.Fatal(err)
	}
	report("DASH mediaRange", man, fromDASH, 0)

	// --- DASH without ranges: the HEAD-request fallback kicks in.
	stripped := regexp.MustCompile(` mediaRange="[^"]*"`).ReplaceAll(mpd.Bytes(), nil)
	heads := 0
	head := func(url string) (int64, error) {
		heads++
		// A real deployment asks the CDN; here the asset itself answers.
		// URL pattern: <name>/<kind>-<id>.mp4, one file per track; the
		// demo returns per-request sizes in segment order per track.
		return headSize(man, url, heads)
	}
	fromHead, err := media.ParseMPD(bytes.NewReader(stripped), man.Name, man.Host, head)
	if err != nil {
		log.Fatal(err)
	}
	report("DASH + HEAD fallback", man, fromHead, heads)

	// --- HLS byte-range playlists.
	var master bytes.Buffer
	if err := media.WriteHLSMaster(&master, man); err != nil {
		log.Fatal(err)
	}
	medias := map[string]string{}
	for ti := range man.Tracks {
		var mb bytes.Buffer
		if err := media.WriteHLSMedia(&mb, man, ti); err != nil {
			log.Fatal(err)
		}
		medias[fmt.Sprintf("%s-%d.m3u8", man.Tracks[ti].Kind, man.Tracks[ti].ID)] = mb.String()
	}
	fromHLS, err := media.FetchHLS(&master, man.Name, man.Host,
		func(uri string) (io.Reader, error) { return strings.NewReader(medias[uri]), nil }, nil)
	if err != nil {
		log.Fatal(err)
	}
	report("HLS EXT-X-BYTERANGE", man, fromHLS, 0)
}

// headSize serves Content-Length lookups against the in-memory asset. The
// call sequence is per-representation in segment order, which is how
// ParseMPD issues them.
var headCursor = map[string]int{}

func headSize(man *media.Manifest, url string, _ int) (int64, error) {
	for ti := range man.Tracks {
		tr := &man.Tracks[ti]
		suffix := fmt.Sprintf("%s-%d.mp4", tr.Kind, tr.ID)
		if strings.HasSuffix(url, suffix) {
			i := headCursor[suffix]
			headCursor[suffix] = i + 1
			if i >= len(tr.Sizes) {
				return 0, fmt.Errorf("segment %d out of range for %s", i, suffix)
			}
			return tr.Sizes[i], nil
		}
	}
	return 0, fmt.Errorf("unknown url %s", url)
}

func report(label string, want, got *media.Manifest, heads int) {
	total, match := 0, 0
	for ti := range want.Tracks {
		for ci := range want.Tracks[ti].Sizes {
			total++
			// Track order may differ between formats; match by kind+sizes.
			if ti < len(got.Tracks) && ci < len(got.Tracks[ti].Sizes) &&
				sameLadderSize(want, got, ti, ci) {
				match++
			}
		}
	}
	extra := ""
	if heads > 0 {
		extra = fmt.Sprintf(" (%d HEAD requests)", heads)
	}
	fmt.Printf("%-22s reconstructed %d/%d chunk sizes%s\n", label, match, total, extra)
}

func sameLadderSize(want, got *media.Manifest, ti, ci int) bool {
	target := want.Tracks[ti].Sizes[ci]
	for gi := range got.Tracks {
		if got.Tracks[gi].Kind != want.Tracks[ti].Kind {
			continue
		}
		if ci < len(got.Tracks[gi].Sizes) && got.Tracks[gi].Sizes[ci] == target {
			return true
		}
	}
	return false
}
