// QUIC multiplexing: the hardest case CSI handles (SQ in Table 2). Audio
// and video chunks share one QUIC connection, their packets interleave, and
// retransmitted data hides under fresh packet numbers. CSI splits the
// traffic into groups at SP1/SP2 split points, searches chunk combinations
// per group, and chains groups by index contiguity (§5.3.2).
//
// The example also shows the displayed-chunk side channel (stats-for-nerds
// style screen information, §4.2) collapsing the ambiguity — the effect
// behind Table 4's SQ rows.
//
// Run with: go run ./examples/quic-mux
package main

import (
	"fmt"
	"log"

	"csi"
)

func main() {
	man, err := csi.Encode(csi.EncodeConfig{
		Name: "mux-demo", Seed: 17, DurationSec: 420, TargetPASR: 1.5,
		AudioTracks: 1, // separate audio => transport multiplexing over QUIC
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := csi.Stream(csi.SessionConfig{
		Design:    csi.SQ,
		Manifest:  man,
		Bandwidth: csi.CellularBandwidth(4, 5_000_000, 0.4),
		Duration:  180,
		Seed:      4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SQ session: %d video + %d audio chunks multiplexed on one QUIC connection\n",
		res.Stats.VideoChunks, res.Stats.AudioChunks)

	run := func(label string, p csi.Params) {
		inf, err := csi.Infer(man, res.Run.Trace, p)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		best, worst, err := inf.AccuracyRange(res.Run.Truth)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-28s groups=%-3d sequences=%-12g best=%.1f%% worst=%.1f%%\n",
			label, len(inf.Groups), inf.SequenceCount, 100*best, 100*worst)
	}

	run("without display info:", csi.Params{MediaHost: man.Host, Mux: true})
	run("with display info:", csi.Params{MediaHost: man.Host, Mux: true, Display: res.Run.Display})

	fmt.Println()
	fmt.Println("expected shape (paper, Table 4 SQ row): the best candidate stays near the")
	fmt.Println("ground truth either way, but without screen information many sequences fit")
	fmt.Println("the traffic, so the worst candidate can be far off; display info prunes the")
	fmt.Println("candidate sets and collapses the sequence count by orders of magnitude.")
}
