// Quickstart: the full CSI loop in one file.
//
//  1. Synthesize a VBR-encoded ABR asset (the manifest CSI collects in
//     advance of a test, §4.1).
//  2. Stream it over an emulated cellular network with an HTTPS player,
//     capturing only what a monitor at the gateway can see of the
//     encrypted traffic.
//  3. Infer the downloaded chunk sequence from packet sizes and timing.
//  4. Check against the instrumented player's ground truth and compute QoE.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"csi"
)

func main() {
	// 1. Encode: 10 minutes, 6-track ladder, VBR with PASR 1.5.
	man, err := csi.Encode(csi.EncodeConfig{
		Name:       "quickstart",
		Seed:       42,
		TargetPASR: 1.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %q: %d tracks x %d chunks, median PASR %.2f\n",
		man.Name, len(man.VideoTracks()), man.NumVideoChunks(), man.MedianPASR())

	// 2. Stream for 3 minutes over a variable cellular link (combined
	// audio+video over HTTPS — the CH design).
	res, err := csi.Stream(csi.SessionConfig{
		Design:    csi.CH,
		Manifest:  man,
		Bandwidth: csi.CellularBandwidth(7, 5_000_000, 0.4),
		Duration:  180,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed: %d chunks downloaded, %d encrypted packets captured\n",
		res.Stats.VideoChunks, len(res.Run.Trace.Packets))

	// 3. Infer the chunk sequence from the encrypted trace alone.
	inf, err := csi.Infer(man, res.Run.Trace, csi.Params{MediaHost: man.Host})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSI: %d requests detected, %g matching sequence(s)\n",
		len(inf.Requests), inf.SequenceCount)

	// 4. Score against ground truth (the instrumented player's log).
	best, worst, err := inf.AccuracyRange(res.Run.Truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy: best candidate %.1f%%, worst candidate %.1f%%\n",
		100*best, 100*worst)

	// QoE from the inferred sequence.
	var chunks []csi.QoEChunk
	for i, a := range inf.Best.Assignments {
		if a.Audio || a.Noise {
			continue
		}
		r := inf.Requests[i]
		chunks = append(chunks, csi.QoEChunk{
			ReqTime: r.Time, DoneTime: r.LastData,
			Track: a.Ref.Track, Index: a.Ref.Index, Size: man.Size(a.Ref),
		})
	}
	rep, err := csi.AnalyzeQoE(chunks, csi.QoEConfig{ChunkDur: man.ChunkDur, Horizon: 180})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QoE: startup %.1fs, %d stalls, %.1f MB downloaded\n",
		rep.StartupDelay, len(rep.Stalls), float64(rep.DataBytes)/1e6)
	for _, ti := range man.VideoTracks() {
		if s := rep.TrackShare[ti]; s > 0.001 {
			fmt.Printf("  track %d (%d kbit/s): %.1f%% of playback\n",
				ti, man.Tracks[ti].Bitrate/1000, 100*s)
		}
	}
}
