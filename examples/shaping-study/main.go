// Shaping study: the §7 use case. A mobile operator wants a token-bucket
// policy that caps video data usage without wrecking QoE — but the player
// is closed-source and its traffic is encrypted. CSI reads the player's
// adaptation behaviour out of the encrypted traffic for each candidate
// (r, N) configuration.
//
// Run with: go run ./examples/shaping-study
package main

import (
	"fmt"
	"log"

	"csi"
)

func main() {
	man, err := csi.Encode(csi.EncodeConfig{
		Name: "movie", Seed: 9, DurationSec: 1200, TargetPASR: 1.35,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("token-bucket shaping vs player behaviour (Hulu-like client, 10 Mbit/s network)")
	fmt.Println()
	fmt.Printf("%-22s  %-10s  %-8s  %s\n", "policy", "data MB", "stalls", "track playback shares")

	type policy struct {
		name   string
		shaper *csi.TokenBucketConfig
	}
	policies := []policy{
		{"unshaped", nil},
		{"r=1.5Mbps N=50KB", &csi.TokenBucketConfig{RateBps: 1_500_000, BucketSize: 50_000}},
		{"r=1.5Mbps N=5MB", &csi.TokenBucketConfig{RateBps: 1_500_000, BucketSize: 5_000_000}},
		{"r=3Mbps   N=50KB", &csi.TokenBucketConfig{RateBps: 3_000_000, BucketSize: 50_000}},
	}
	for _, pol := range policies {
		res, err := csi.Stream(csi.SessionConfig{
			Design:    csi.CH,
			Manifest:  man,
			Bandwidth: csi.ConstantBandwidth(10_000_000),
			Shaper:    pol.shaper,
			Duration:  300,
			Seed:      3,
			// Hulu-like client (§7): lowest track first, half-bandwidth
			// rule, ~145 s buffer ceiling.
			MaxBufferSec:    145,
			ResumeBufferSec: 145,
			StartupChunks:   3,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Everything below is derived from the ENCRYPTED trace via CSI.
		inf, err := csi.Infer(man, res.Run.Trace, csi.Params{MediaHost: man.Host})
		if err != nil {
			log.Fatal(err)
		}
		var chunks []csi.QoEChunk
		for i, a := range inf.Best.Assignments {
			if a.Audio || a.Noise {
				continue
			}
			r := inf.Requests[i]
			chunks = append(chunks, csi.QoEChunk{
				ReqTime: r.Time, DoneTime: r.LastData,
				Track: a.Ref.Track, Index: a.Ref.Index, Size: man.Size(a.Ref),
			})
		}
		rep, err := csi.AnalyzeQoE(chunks, csi.QoEConfig{ChunkDur: man.ChunkDur, Horizon: 300})
		if err != nil {
			log.Fatal(err)
		}
		shares := ""
		for _, ti := range man.VideoTracks() {
			if s := rep.TrackShare[ti]; s > 0.005 {
				shares += fmt.Sprintf("T%d:%.0f%% ", ti+1, 100*s)
			}
		}
		fmt.Printf("%-22s  %-10.1f  %-8d  %s\n",
			pol.name, float64(res.Stats.DownlinkBytes)/1e6, len(rep.Stalls), shares)
	}
	fmt.Println()
	fmt.Println("expected shape (paper, Figure 10/11): higher r and larger N push playback")
	fmt.Println("to higher tracks and raise data usage; large buckets cause track oscillation")
	fmt.Println("under variable bandwidth.")
}
