// Encoding study: why chunk sizes work as fingerprints (§3.3, Figure 5).
//
// For VBR encodings of different variability (PASR), this example measures
// the fraction of chunk sequences whose size pattern is unique under the
// HTTPS (k=1%) and QUIC (k=5%) estimation error bounds. Single chunks are
// essentially never unique; short sequences almost always are — the
// foundational insight that makes CSI feasible.
//
// Run with: go run ./examples/encoding-study
package main

import (
	"fmt"
	"log"

	"csi"
)

func main() {
	fmt.Println("fraction of chunk sequences uniquely identifiable by size (%)")
	fmt.Println()
	fmt.Printf("%-6s %-4s", "PASR", "k%")
	lengths := []int{1, 2, 3, 4, 6, 8}
	for _, L := range lengths {
		fmt.Printf("  L=%-4d", L)
	}
	fmt.Println()

	for _, pasr := range []float64{1.1, 1.5, 2.0} {
		man, err := csi.Encode(csi.EncodeConfig{
			Name: "study", Seed: 1007, DurationSec: 634, TargetPASR: pasr,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, k := range []float64{0.01, 0.05} {
			fmt.Printf("%-6.1f %-4.0f", pasr, 100*k)
			for _, L := range lengths {
				f, err := csi.UniqueFraction(man, L, k, 4000, 1)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-6.1f", 100*f)
			}
			fmt.Println()
		}
	}
	fmt.Println()
	fmt.Println("paper landmarks: <0.1% of single chunks unique at any PASR; 99.9% of")
	fmt.Println("3-chunk sequences unique at PASR 1.1 / k=1%; 92.6% of 6-chunk sequences")
	fmt.Println("unique at PASR 1.1 / k=5%.")
}
