package csi_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/faults"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/obs"
	"csi/internal/session"
)

// The fault-injection determinism contract: the same seed and impairment
// spec produce a byte-identical impaired capture, and the degraded
// inference over it produces byte-identical trace and metrics exports. The
// impaired run is pinned by content hash (it is megabytes of JSON), the
// inference outputs as full goldens.

func goldenFaultSpec(t *testing.T) faults.Spec {
	t.Helper()
	spec, err := faults.ParseSpec("loss=0.01,dup=0.005,cross=1,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// goldenFaultSession streams the golden fixture without session tracing —
// the fault goldens only pin the impairment + inference half.
func goldenFaultSession(t *testing.T, man *media.Manifest) *session.Result {
	t.Helper()
	res, err := session.Run(session.Config{
		Design: session.SH, Manifest: man,
		Bandwidth: netem.Constant(4_000_000),
		Duration:  90, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// goldenFaultInfer impairs the run and infers it with degradation enabled,
// sharing one tracer across both stages exactly like csi-analyze -faults.
// It returns the impaired run JSON, the JSONL event log and the metrics.
func goldenFaultInfer(t *testing.T, man *media.Manifest, run *capture.Run) (runJSON, trace, metrics []byte) {
	t.Helper()
	sink := obs.NewCollector()
	tr := obs.New(nil, sink)
	impaired, _ := faults.Apply(run, goldenFaultSpec(t), tr)
	var buf bytes.Buffer
	if err := impaired.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	p := core.Params{MediaHost: man.Host, Degrade: true, Obs: tr}
	if _, err := core.Infer(man, impaired.Trace, p); err != nil {
		t.Fatalf("degraded inference must not fail: %v", err)
	}
	var tb, mb bytes.Buffer
	if err := obs.WriteJSONEvents(&tb, sink.Records()); err != nil {
		t.Fatal(err)
	}
	if err := p.Obs.Metrics().WriteText(&mb); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tb.Bytes(), mb.Bytes()
}

func TestFaultGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a 90-second session")
	}
	man := goldenManifest(t)
	res := goldenFaultSession(t, man)

	run1, trace1, metrics1 := goldenFaultInfer(t, man, res.Run)
	run2, trace2, metrics2 := goldenFaultInfer(t, man, res.Run)
	if !bytes.Equal(run1, run2) {
		t.Error("same seed+spec produced different impaired run bytes")
	}
	if !bytes.Equal(trace1, trace2) {
		t.Error("same seed+spec produced different inference traces")
	}
	if !bytes.Equal(metrics1, metrics2) {
		t.Error("same seed+spec produced different metrics dumps")
	}

	sum := sha256.Sum256(run1)
	checkObsGolden(t, "fault.run.sha256", []byte(hex.EncodeToString(sum[:])+"\n"))
	checkObsGolden(t, "fault.infer.trace.jsonl", trace1)
	checkObsGolden(t, "fault.infer.metrics.txt", metrics1)
}

// Degrade on a pristine capture is a contract-level no-op: the inference
// trace and metrics must be byte-identical to the clean goldens, proving
// none of the repair or fallback paths fire without an actual impairment.
func TestDegradeCleanGoldenInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a 90-second session")
	}
	man := goldenManifest(t)
	res := goldenFaultSession(t, man)

	sink := obs.NewCollector()
	p := core.Params{MediaHost: man.Host, Degrade: true, Obs: obs.New(nil, sink)}
	inf, err := core.Infer(man, res.Run.Trace, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.Warnings) != 0 {
		t.Errorf("clean capture produced warnings: %+v", inf.Warnings)
	}
	for _, c := range inf.Confidences() {
		if c != 1 {
			t.Fatalf("clean capture produced confidence %g, want 1", c)
		}
	}
	var trace, metrics bytes.Buffer
	if err := obs.WriteJSONEvents(&trace, sink.Records()); err != nil {
		t.Fatal(err)
	}
	if err := p.Obs.Metrics().WriteText(&metrics); err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string][]byte{
		"infer.trace.jsonl": trace.Bytes(),
		"infer.metrics.txt": metrics.Bytes(),
	} {
		want, err := os.ReadFile(filepath.Join("testdata", "obs", name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: Degrade changed the clean inference output (%d vs %d bytes)", name, len(got), len(want))
		}
	}
}
