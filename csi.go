package csi

import (
	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/qoe"
	"csi/internal/session"
	"csi/internal/stats"
	"csi/internal/uniq"
)

// Media model.
type (
	// Manifest is an ABR asset: the ladder of tracks with per-chunk sizes.
	Manifest = media.Manifest
	// EncodeConfig drives the synthetic VBR encoder.
	EncodeConfig = media.EncodeConfig
	// ChunkRef identifies one chunk (track + playback index).
	ChunkRef = media.ChunkRef
)

// Encode synthesizes an ABR asset with a target PASR (see media.Encode).
func Encode(cfg EncodeConfig) (*Manifest, error) { return media.Encode(cfg) }

// LoadManifest reads a manifest JSON file.
func LoadManifest(path string) (*Manifest, error) { return media.LoadJSON(path) }

// Streaming sessions.
type (
	// SessionConfig describes one emulated streaming test run.
	SessionConfig = session.Config
	// SessionResult is the captured run plus transport statistics.
	SessionResult = session.Result
	// Design is the ABR system design type (Table 2 of the paper).
	Design = session.Design
	// BandwidthTrace is a piecewise-constant bandwidth profile.
	BandwidthTrace = netem.BandwidthTrace
	// TokenBucketConfig is the tc-tbf shaper configuration of §7.
	TokenBucketConfig = netem.TokenBucketConfig
)

// The four ABR design types: Combined/Separate audio x HTTPS/QUIC.
const (
	CH = session.CH
	SH = session.SH
	CQ = session.CQ
	SQ = session.SQ
)

// Stream runs one streaming session and captures its encrypted traffic.
func Stream(cfg SessionConfig) (*SessionResult, error) { return session.Run(cfg) }

// ConstantBandwidth returns a stable bandwidth profile (bits/s).
func ConstantBandwidth(bps float64) *BandwidthTrace { return netem.Constant(bps) }

// CellularBandwidth generates a synthetic variable cellular profile.
func CellularBandwidth(seed int64, meanBps, variability float64) *BandwidthTrace {
	return netem.GenerateCellular(netem.CellularConfig{Seed: seed, MeanBps: meanBps, Variability: variability})
}

// Inference.
type (
	// Params configures the CSI inferencer.
	Params = core.Params
	// Inference is the result: detected requests/groups, the number of
	// matching chunk sequences, and one concrete sequence.
	Inference = core.Inference
	// Trace is the monitor-visible packet capture.
	Trace = capture.Trace
	// Run bundles a trace with the instrumentation side-band (ground
	// truth, display log) used for evaluation.
	Run = capture.Run
)

// Infer runs the CSI pipeline: connection filtering, request detection and
// size estimation (Step 1), then candidate search and contiguity graph
// matching (Step 2).
func Infer(man *Manifest, tr *Trace, p Params) (*Inference, error) {
	return core.Infer(man, tr, p)
}

// QoE analysis.
type (
	// QoEChunk is one downloaded chunk with timing, input to QoE analysis.
	QoEChunk = qoe.Chunk
	// QoEConfig sets the playback reconstruction model.
	QoEConfig = qoe.Config
	// QoEReport contains stalls, startup delay, track time distribution
	// and data usage.
	QoEReport = qoe.Report
)

// AnalyzeQoE reconstructs playback and computes QoE metrics from a chunk
// sequence (inferred or ground truth).
func AnalyzeQoE(chunks []QoEChunk, cfg QoEConfig) (*QoEReport, error) {
	return qoe.Analyze(chunks, cfg)
}

// UniqueFraction measures the fingerprintability of an asset (§3.3): the
// fraction of length-L chunk sequences whose size pattern is unique under a
// size-estimation error bound k (0.01 for HTTPS, 0.05 for QUIC). Exact for
// L=1, sampled otherwise.
func UniqueFraction(man *Manifest, L int, k float64, samples int, seed int64) (float64, error) {
	a, err := uniq.New(man, k)
	if err != nil {
		return 0, err
	}
	return a.UniqueFraction(L, samples, stats.NewRand(seed))
}
