#!/usr/bin/env bash
# Measures sustained core.Infer session throughput (sessions/sec,
# allocs/session, peak RSS) over serial and GOMAXPROCS-parallel streams of
# distinct pre-captured sessions, and records the results as
# BENCH_throughput.json at the module root. The SQ stream runs with the
# process-wide half-enumeration cache enabled, as a fleet monitor would.
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./scripts/throughput -json BENCH_throughput.json "$@"
