#!/usr/bin/env bash
# Runs the observability-overhead benchmark pairs (nil tracer vs live
# collector at every instrumented layer) and records the results as
# BENCH_obs.json at the module root. The Off variants must track their
# uninstrumented baselines within noise — that is the obs cost contract.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_obs.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# Layer pairs: engine dispatch, TCP segment delivery, obs micro-costs,
# inference candidate search (the root-package pair reuses the 10-minute
# fixture, so it dominates the runtime of this script).
go test -run='^$' -bench='Obs(Off|On)$' -benchmem ./internal/sim/ ./internal/tcpsim/ | tee "$tmp"
go test -run='^$' -bench='^Benchmark(Nil|Live|RegistrySnapshot)' -benchmem ./internal/obs/ | tee -a "$tmp"
# The live ops plane's cost contract: the no-`-serve` stage-timer path is a
# single nil-interface comparison with zero allocations, and the ring sink
# stays allocation-free per record without waiters.
go test -run='^$' -bench='^Benchmark(Nil|Live)StageTimer$|^BenchmarkRingEmit$' -benchmem ./internal/obs/live/ | tee -a "$tmp"
go test -run='^$' -bench='^BenchmarkInferObs(Off|On)$' -benchmem . | tee -a "$tmp"

awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bytes, allocs
    printf "}"
}
END { print "\n]" }
' "$tmp" > "$out"
echo "wrote $out"
