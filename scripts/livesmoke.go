//go:build ignore

// livesmoke probes a running live ops plane (-serve) and validates its
// contract: /healthz answers 200 "ok", /readyz answers 200 once the binary
// reported ready, /metrics parses as Prometheus text exposition (0.0.4)
// and carries the csi_ namespace, and /statusz parses as JSON with the
// documented top-level fields. check.sh runs it against a csi-paper
// process bound to 127.0.0.1:0 (the address read from -serve-addr-file).
//
// Usage: go run scripts/livesmoke.go <addr>
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fail("usage: livesmoke <host:port>")
	}
	base := "http://" + strings.TrimSpace(os.Args[1])
	client := &http.Client{Timeout: 5 * time.Second}

	// The serving process may still be starting; retry briefly.
	body, err := fetchRetry(client, base+"/healthz", 200, 40)
	if err != nil {
		fail("healthz: %v", err)
	}
	if strings.TrimSpace(body) != "ok" {
		fail("healthz body = %q, want ok", body)
	}

	if body, err = fetchRetry(client, base+"/readyz", 200, 40); err != nil {
		fail("readyz: %v", err)
	}

	if body, err = fetchRetry(client, base+"/metrics", 200, 1); err != nil {
		fail("metrics: %v", err)
	}
	if err := checkProm(body); err != nil {
		fail("metrics exposition: %v", err)
	}
	if !strings.Contains(body, "csi_live_uptime_seconds") {
		fail("metrics missing csi_live_uptime_seconds")
	}

	if body, err = fetchRetry(client, base+"/statusz", 200, 1); err != nil {
		fail("statusz: %v", err)
	}
	var doc struct {
		Program   string  `json:"program"`
		GoVersion string  `json:"go_version"`
		UptimeSec float64 `json:"uptime_sec"`
		Ready     bool    `json:"ready"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		fail("statusz does not parse: %v", err)
	}
	if doc.Program == "" || doc.GoVersion == "" || !doc.Ready {
		fail("statusz fields wrong: program=%q go=%q ready=%v", doc.Program, doc.GoVersion, doc.Ready)
	}
	fmt.Printf("livesmoke: %s ok (program=%s)\n", base, doc.Program)
}

func fetchRetry(c *http.Client, url string, wantCode, attempts int) (string, error) {
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(250 * time.Millisecond)
		}
		resp, err := c.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != wantCode {
			lastErr = fmt.Errorf("status %d, want %d", resp.StatusCode, wantCode)
			continue
		}
		return string(body), nil
	}
	return "", lastErr
}

// checkProm validates the text exposition line by line: comments, or
// `name[{labels}] value` with a parseable float and a legal metric name.
func checkProm(body string) error {
	sc := bufio.NewScanner(strings.NewReader(body))
	n := 0
	for sc.Scan() {
		line := sc.Text()
		n++
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return fmt.Errorf("line %d: no sample value: %q", n, line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil && line[sp+1:] != "+Inf" && line[sp+1:] != "-Inf" && line[sp+1:] != "NaN" {
			return fmt.Errorf("line %d: bad value %q", n, line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return fmt.Errorf("line %d: unterminated labels: %q", n, line)
			}
			name = name[:i]
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
			if !ok {
				return fmt.Errorf("line %d: bad metric name %q", n, name)
			}
		}
	}
	if n == 0 {
		return fmt.Errorf("empty exposition")
	}
	return sc.Err()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "livesmoke: "+format+"\n", args...)
	os.Exit(1)
}
