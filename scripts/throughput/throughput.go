// throughput measures sustained core.Infer session throughput: how many
// full inferences per second one process sustains over a stream of distinct
// pre-captured sessions, serially and across GOMAXPROCS-wide workers, plus
// the allocator cost per session and the process's peak RSS. The numbers
// land in BENCH_throughput.json via scripts/bench_throughput.sh (wired into
// `make bench`); check.sh runs a -quick single-iteration smoke.
//
// Each iteration analyzes a fresh Trace view of a pre-generated session
// (same packets, cold per-trace memo), modeling a monitor that receives a
// new session capture and runs one inference on it — session generation
// (the simulator) is excluded from the timed region. The SQ stream runs
// with the process-wide half-enumeration cache enabled, as a fleet monitor
// would (-half-cache-mb), so cross-session sharing shows up as throughput.
//
// Usage: go run ./scripts/throughput [-quick] [-json out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/session"
)

type fixture struct {
	man *media.Manifest
	run *capture.Run
	p   core.Params
}

type result struct {
	Name             string  `json:"name"`
	Workers          int     `json:"workers"`
	Sessions         int     `json:"sessions"`
	Seconds          float64 `json:"seconds"`
	SessionsPerSec   float64 `json:"sessions_per_sec"`
	AllocsPerSession float64 `json:"allocs_per_session"`
	BytesPerSession  float64 `json:"bytes_per_session"`
	PeakRSSBytes     int64   `json:"peak_rss_bytes"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "throughput:", err)
	os.Exit(1)
}

// buildFixtures pre-generates n distinct sessions of one design (different
// assets, bandwidth traces and player seeds), outside any timed region.
func buildFixtures(d session.Design, n int, sessionSec, videoSec float64) []fixture {
	fixes := make([]fixture, n)
	audio := 0
	if d.Separate() {
		audio = 1
	}
	for i := range fixes {
		man, err := media.Encode(media.EncodeConfig{
			Name: "tp", Seed: int64(40 + i), DurationSec: videoSec, ChunkDur: 5,
			TargetPASR: 1.5, AudioTracks: audio,
		})
		if err != nil {
			fail(err)
		}
		res, err := session.Run(session.Config{
			Design:   d,
			Manifest: man,
			Bandwidth: netem.GenerateCellular(netem.CellularConfig{
				Seed: int64(7 + i), MeanBps: 6_000_000, Variability: 0.4,
			}),
			Duration: sessionSec,
			Seed:     int64(7 + i),
		})
		if err != nil {
			fail(err)
		}
		fixes[i] = fixture{man: man, run: res.Run, p: core.Params{MediaHost: man.Host, Mux: d == session.SQ}}
	}
	return fixes
}

// freshTrace returns a new Trace sharing the captured packets but with a
// cold per-trace memo, modeling a newly delivered session capture: each
// timed inference pays the full per-session analysis cost.
func freshTrace(t *capture.Trace) *capture.Trace {
	return &capture.Trace{Packets: t.Packets, SNI: t.SNI, DNS: t.DNS, ServerIP: t.ServerIP}
}

// peakRSS reads VmHWM from /proc/self/status (Linux); 0 when unavailable.
func peakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// runStream infers `iters` sessions round-robin over the fixtures with the
// given worker width, returning throughput and allocator deltas.
func runStream(name string, fixes []fixture, iters, workers int, hc *core.HalfCache) result {
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	infer := func(i int) {
		fx := fixes[i%len(fixes)]
		p := fx.p
		p.HalfCache = hc
		if _, err := core.Infer(fx.man, freshTrace(fx.run.Trace), p); err != nil {
			fail(fmt.Errorf("%s session %d: %w", name, i, err))
		}
	}
	if workers <= 1 {
		for i := 0; i < iters; i++ {
			infer(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= iters {
						return
					}
					infer(i)
				}
			}()
		}
		wg.Wait()
	}
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	return result{
		Name:             name,
		Workers:          workers,
		Sessions:         iters,
		Seconds:          elapsed,
		SessionsPerSec:   float64(iters) / elapsed,
		AllocsPerSession: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters),
		BytesPerSession:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters),
		PeakRSSBytes:     peakRSS(),
	}
}

func main() {
	quick := flag.Bool("quick", false, "single-iteration smoke (CI): tiny sessions, 1 iteration per mode")
	jsonOut := flag.String("json", "", "write results as a JSON array to this path")
	cacheMB := flag.Int64("half-cache-mb", 64, "process-wide half-enumeration cache for the SQ stream, MiB (0 = disabled)")
	flag.Parse()

	// Full mode: the paper's 10-minute sessions, enough iterations for a
	// sustained rate. Quick mode: short sessions, one iteration per mode —
	// exercises every code path in a few seconds.
	nFix, iters := 4, 32
	sessionSec, videoSec := 600.0, 900.0
	sqSessionSec, sqIters := 150.0, 8
	if *quick {
		nFix, iters = 2, 1
		sessionSec, videoSec = 120.0, 300.0
		sqSessionSec, sqIters = 60.0, 1
	}
	workers := runtime.GOMAXPROCS(0)

	sh := buildFixtures(session.SH, nFix, sessionSec, videoSec)
	sq := buildFixtures(session.SQ, nFix, sqSessionSec, videoSec)
	hc := core.NewHalfCache(*cacheMB << 20)

	results := []result{
		runStream("sh_serial", sh, iters, 1, nil),
		runStream("sh_parallel", sh, iters, workers, nil),
		runStream("sq_serial_halfcache", sq, sqIters, 1, hc),
		runStream("sq_parallel_halfcache", sq, sqIters, workers, hc),
	}
	for _, r := range results {
		fmt.Printf("%-22s workers=%-2d sessions=%-3d %8.2f sess/s  %10.0f B/sess  %8.0f allocs/sess  rss %d MiB\n",
			r.Name, r.Workers, r.Sessions, r.SessionsPerSec, r.BytesPerSession, r.AllocsPerSession, r.PeakRSSBytes>>20)
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *jsonOut)
	}
}
