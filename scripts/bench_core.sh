#!/usr/bin/env bash
# Runs the core mux candidate-search benchmark pairs (parallel kernel vs
# the preserved serial reference on identical fixed-seed Table-3 fixtures)
# and records the results as BENCH_core.json at the module root. The
# non-Serial variants are the shipping implementation; the Serial variants
# are the pre-kernel baseline, so each pair is a before/after measurement.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_core.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run='^$' -bench='^Benchmark(MuxCandidateSearch|WindowStats)(Serial)?$' \
	-benchmem -benchtime=2s ./internal/core/ | tee "$tmp"

awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bytes, allocs
    printf "}"
}
END { print "\n]" }
' "$tmp" > "$out"
echo "wrote $out"
