#!/bin/sh
# check.sh — the single pre-merge gate (tier-1+ verify).
#
# Runs, in order:
#   1. go build ./...            everything compiles
#   2. go vet ./...              stock vet
#   3. go run ./cmd/csi-vet ./.. repo-specific determinism/correctness rules
#   4. go test -race ./...       full test suite under the race detector
#
# Any failure aborts the gate. Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== csi-vet ./..."
go run ./cmd/csi-vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "check.sh: all gates passed"
