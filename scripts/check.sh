#!/bin/sh
# check.sh — the single pre-merge gate (tier-1+ verify).
#
# Runs, in order:
#   1. go build ./...            everything compiles
#   2. go vet ./...              stock vet
#   3. csi-vet -strict-ignores    repo-specific determinism/correctness rules
#                                (incl. interprocedural taint + concurrency),
#                                failing on stale suppressions; archives the
#                                machine-readable report as csi-vet.json
#   4. go test -race ./...       full test suite under the race detector
#   5. traced quickstart         csi-run + csi-analyze with -trace-out/-metrics,
#                                diffed byte-for-byte against testdata/obs/
#
# Any failure aborts the gate. Run from anywhere inside the repository.
# `check.sh -quick` trims the crash-recovery matrix to its two
# highest-value points; every other gate runs in full either way.
set -eu

cd "$(dirname "$0")/.."

QUICK=0
[ "${1:-}" = "-quick" ] && QUICK=1

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== csi-vet ./... (strict ignores; JSON archived as csi-vet.json)"
# The JSON report (findings + stale suppressions + the audited suppression
# inventory) is committed at the repo root so CI reviews diff findings
# structurally instead of parsing text. It is regenerated here on every
# gate run; commit the refreshed file when the inventory legitimately
# changes.
go run ./cmd/csi-vet -strict-ignores -format json ./... > csi-vet.json

echo "== go test -race ./..."
# Explicit per-package timeout: the race detector costs ~10x on the
# inference-heavy packages, which puts internal/core near the default
# 10-minute limit on small (single-core CI) machines.
go test -race -timeout 30m ./...

echo "== core bench smoke (1 iteration)"
# One iteration of each mux candidate-search benchmark so the perf harness
# behind scripts/bench_core.sh cannot rot without failing the gate.
go test -run='^$' -bench='^Benchmark(MuxCandidateSearch|WindowStats)(Serial)?$' \
    -benchtime=1x ./internal/core > /dev/null

echo "== traced quickstart vs committed obs goldens"
# The same fixed-seed pipeline the TestObsGoldenDeterminism fixture runs,
# but through the real binaries: encode -> stream -> infer, with tracing
# on. Byte-identity against testdata/obs/ proves the CLI wiring, the JSON
# round-trips, and the obs determinism contract end to end. Regenerate the
# goldens with `go test -run TestObsGoldenDeterminism -update .` after an
# intended change.
obstmp=$(mktemp -d)
trap 'rm -rf "$obstmp"' EXIT
go run ./cmd/csi-encode -pasr 1.5 -duration 300 -audio -seed 7 -name golden -o "$obstmp/man.json" > /dev/null
go run ./cmd/csi-run -manifest "$obstmp/man.json" -design SH -bandwidth 4 -duration 90 -seed 7 \
    -o "$obstmp/run.json" -trace-out "$obstmp/run.trace.json" -metrics "$obstmp/run.metrics.txt" > /dev/null
cmp "$obstmp/run.trace.json" testdata/obs/session.trace.json
cmp "$obstmp/run.metrics.txt" testdata/obs/session.metrics.txt
go run ./cmd/csi-analyze -manifest "$obstmp/man.json" -run "$obstmp/run.json" \
    -trace-out "$obstmp/infer.trace.jsonl" -metrics "$obstmp/infer.metrics.txt" > /dev/null
cmp "$obstmp/infer.trace.jsonl" testdata/obs/infer.trace.jsonl
cmp "$obstmp/infer.metrics.txt" testdata/obs/infer.metrics.txt
# The JSONL event log must render as a timeline without error.
go run ./cmd/csi-trace -timeline "$obstmp/infer.trace.jsonl" > /dev/null

echo "== live ops plane smoke (-serve)"
# csi-paper serves /metrics, /statusz, /healthz etc. while the timing
# experiment runs; livesmoke.go validates the Prometheus exposition and the
# status document against a live process. Then the traced quickstart reruns
# WITH -serve and must stay byte-identical to the committed goldens: the ops
# plane only reads snapshots of the application registry, so serving can
# never perturb a deterministic export.
go build -o "$obstmp/csi-paper" ./cmd/csi-paper
rm -f "$obstmp/serve.addr"
"$obstmp/csi-paper" -scale quick -serve 127.0.0.1:0 -serve-addr-file "$obstmp/serve.addr" timing \
    > /dev/null 2>&1 &
paper_pid=$!
i=0
while [ ! -s "$obstmp/serve.addr" ] && [ "$i" -lt 40 ]; do sleep 0.25; i=$((i+1)); done
go run scripts/livesmoke.go "$(cat "$obstmp/serve.addr")"
wait "$paper_pid"
go run ./cmd/csi-run -manifest "$obstmp/man.json" -design SH -bandwidth 4 -duration 90 -seed 7 \
    -serve 127.0.0.1:0 -o "$obstmp/run2.json" \
    -trace-out "$obstmp/run2.trace.json" -metrics "$obstmp/run2.metrics.txt" > /dev/null 2>&1
cmp "$obstmp/run2.json" "$obstmp/run.json"
cmp "$obstmp/run2.trace.json" testdata/obs/session.trace.json
cmp "$obstmp/run2.metrics.txt" testdata/obs/session.metrics.txt
go run ./cmd/csi-analyze -manifest "$obstmp/man.json" -run "$obstmp/run.json" \
    -serve 127.0.0.1:0 \
    -trace-out "$obstmp/infer2.trace.jsonl" -metrics "$obstmp/infer2.metrics.txt" > /dev/null 2>&1
cmp "$obstmp/infer2.trace.jsonl" testdata/obs/infer.trace.jsonl
cmp "$obstmp/infer2.metrics.txt" testdata/obs/infer.metrics.txt

echo "== golden byte-identity with the process half-cache enabled"
# The inference must not change when the process-wide half-enumeration
# cache (DESIGN.md §11) is switched on: rerun the traced quickstart
# analysis with -half-cache-mb and require byte-identity against the same
# committed goldens. (The SQ warm-vs-cold-vs-disabled contract — identical
# candidates, truncation points and accuracy ranges across sessions
# sharing one cache — is pinned by the TestInferHalfCache* and
# TestHalfCache* tests, which ran under -race above.)
go run ./cmd/csi-analyze -manifest "$obstmp/man.json" -run "$obstmp/run.json" \
    -half-cache-mb 64 \
    -trace-out "$obstmp/infer3.trace.jsonl" -metrics "$obstmp/infer3.metrics.txt" > /dev/null
cmp "$obstmp/infer3.trace.jsonl" testdata/obs/infer.trace.jsonl
cmp "$obstmp/infer3.metrics.txt" testdata/obs/infer.metrics.txt

echo "== session throughput smoke (quick)"
# One iteration of each throughput stream (serial + parallel, SH + SQ with
# a shared warm half-cache) so the harness behind
# scripts/bench_throughput.sh cannot rot without failing the gate.
go run ./scripts/throughput -quick > /dev/null

echo "== capture decoder fuzz smoke"
# A few seconds of coverage-guided fuzzing over each run decoder. The static
# seed corpora under internal/capture/testdata/fuzz/ always replay as part of
# `go test`; this smoke additionally exercises the mutation engine so a
# decoder panic cannot land without tripping the gate.
go test -run='^$' -fuzz='^FuzzReadJSON$' -fuzztime=5s ./internal/capture > /dev/null
go test -run='^$' -fuzz='^FuzzReadBinary$' -fuzztime=5s ./internal/capture > /dev/null

echo "== fault spec parser fuzz smoke"
# Same treatment for the -faults flag grammar: the seeded corpus replays in
# go test; the smoke exercises the mutation engine against the parser's
# no-panic / finite-values / canonical-roundtrip contract.
go test -run='^$' -fuzz='^FuzzParseSpec$' -fuzztime=5s ./internal/faults > /dev/null

echo "== fault injection byte determinism vs committed goldens"
# Same seed + same impairment spec must give byte-identical impaired runs
# through the real binary, and the degraded inference over an impaired
# capture must match the committed goldens byte for byte (regenerate with
# `go test -run TestFaultGoldenDeterminism -update .`).
faultspec="loss=0.01,dup=0.005,cross=1,seed=11"
go run ./cmd/csi-run -manifest "$obstmp/man.json" -design SH -bandwidth 4 -duration 90 -seed 7 \
    -faults "$faultspec" -o "$obstmp/fault1.json" > /dev/null 2>&1
go run ./cmd/csi-run -manifest "$obstmp/man.json" -design SH -bandwidth 4 -duration 90 -seed 7 \
    -faults "$faultspec" -o "$obstmp/fault2.json" > /dev/null 2>&1
cmp "$obstmp/fault1.json" "$obstmp/fault2.json"
go run ./cmd/csi-analyze -manifest "$obstmp/man.json" -run "$obstmp/run.json" -faults "$faultspec" \
    -trace-out "$obstmp/fault.trace.jsonl" -metrics "$obstmp/fault.metrics.txt" > /dev/null
cmp "$obstmp/fault.trace.jsonl" testdata/obs/fault.infer.trace.jsonl
cmp "$obstmp/fault.metrics.txt" testdata/obs/fault.infer.metrics.txt

echo "== streaming monitor replay byte-identity"
# The daemon's replay mode must reproduce the offline batch pipeline byte
# for byte over the same frame stream (DESIGN.md §12): pack two recorded
# runs (clean + impaired) into one interleaved recording, run it through
# the incremental monitor (provisional solves every 500 packets) and
# through the batch reference, and compare outputs bit for bit.
go run ./cmd/csi-monitord -pack -o "$obstmp/frames.jsonl" "$obstmp/run.json" "$obstmp/fault1.json"
go run ./cmd/csi-monitord -manifest "$obstmp/man.json" -resolve-every 500 \
    -replay "$obstmp/frames.jsonl" -o "$obstmp/replay.jsonl"
go run ./cmd/csi-monitord -manifest "$obstmp/man.json" \
    -batch "$obstmp/frames.jsonl" -o "$obstmp/batch.jsonl"
cmp "$obstmp/replay.jsonl" "$obstmp/batch.jsonl"

echo "== streaming monitor eviction smoke (tiny flow table)"
# With a one-slot flow table the second flow's arrival evicts the first to
# a partial result carrying the structured flow_evicted warning — the
# robustness envelope degrades, never crashes.
go run ./cmd/csi-monitord -manifest "$obstmp/man.json" -max-flows 1 \
    -replay "$obstmp/frames.jsonl" -o "$obstmp/evict.jsonl"
grep -q 'flow_evicted' "$obstmp/evict.jsonl"

echo "== crash-recovery matrix (kill -> recover -> byte-identical)"
# Durability gate (DESIGN.md §13): each named crashpoint in
# internal/stream/crashpoint marks a durability boundary; killing the
# daemon there (CSI_CRASHPOINT, exit 86) and restarting against the same
# -state-dir must reproduce the uninterrupted replay byte for byte. First
# the baseline: a durable uninterrupted run must itself match the
# non-durable replay — -state-dir can never perturb output. Under -quick
# only the two highest-value points run (a mid-stream WAL append and the
# published-snapshot boundary); the full matrix covers all six.
go build -o "$obstmp/csi-monitord" ./cmd/csi-monitord
n=$(wc -l < "$obstmp/frames.jsonl")
"$obstmp/csi-monitord" -manifest "$obstmp/man.json" -resolve-every 500 \
    -state-dir "$obstmp/durable-clean" -snapshot-every 8192 \
    -replay "$obstmp/frames.jsonl" -o "$obstmp/durable.jsonl" 2> /dev/null
cmp "$obstmp/durable.jsonl" "$obstmp/replay.jsonl"
crashpoints="wal.pre_append@$((n / 3)) wal.post_append@$((n / 2)) snapshot.pre_rename snapshot.post_rename commit.pre_emit drain.pre_snapshot"
if [ "$QUICK" = 1 ]; then
    crashpoints="wal.post_append@$((n / 2)) snapshot.post_rename"
fi
for pt in $crashpoints; do
    sdir="$obstmp/crash-$(echo "$pt" | tr '.@' '--')"
    rc=0
    CSI_CRASHPOINT="$pt" "$obstmp/csi-monitord" -manifest "$obstmp/man.json" -resolve-every 500 \
        -state-dir "$sdir" -snapshot-every 8192 \
        -replay "$obstmp/frames.jsonl" -o "$sdir.out" > /dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 86 ]; then
        echo "crashpoint $pt: expected exit 86 from the armed run, got $rc" >&2
        exit 1
    fi
    "$obstmp/csi-monitord" -manifest "$obstmp/man.json" -resolve-every 500 \
        -state-dir "$sdir" -snapshot-every 8192 \
        -replay "$obstmp/frames.jsonl" -o "$sdir.out" 2> /dev/null
    cmp "$sdir.out" "$obstmp/replay.jsonl"
done

echo "== WAL record salvage fuzz smoke"
# The WAL scanner against arbitrary segment bytes: salvage must never
# panic, never misclassify a torn tail as corruption, and whatever it
# keeps must re-encode to exactly the valid prefix it reported. Seeds
# mirror the crash matrix's real damage shapes (minimization capped).
go test -run='^$' -fuzz='^FuzzWALRecord$' -fuzztime=5s -fuzzminimizetime=10s \
    ./internal/stream > /dev/null

echo "== stream ingest fuzz smoke"
# The frame decoder and the monitor's ingest/evict/solve machinery under a
# deliberately tiny budget: truncated packets, interleaved flows,
# out-of-order timestamps and mid-handshake eviction must never panic. The
# static corpus under internal/stream/testdata/fuzz/ replays in go test;
# the smoke exercises the mutation engine (minimization capped so a new
# interesting input cannot stall the gate).
go test -run='^$' -fuzz='^FuzzStreamIngest$' -fuzztime=5s -fuzzminimizetime=10s \
    ./internal/stream > /dev/null

echo "== bounded inference smoke (tiny work budget)"
# A one-step work budget must truncate the inference into a *partial*
# result — exit 0, a structured deadline_exceeded warning on stdout —
# never a hard error (DESIGN.md §10). Uses the quickstart run from above.
go run ./cmd/csi-analyze -manifest "$obstmp/man.json" -run "$obstmp/run.json" \
    -work-budget 1 > "$obstmp/budget.out"
grep -q 'deadline_exceeded' "$obstmp/budget.out"

echo "== degradation sweep smoke"
# One tiny sweep (1 video x 1 trace, clean + one loss level) end to end; the
# full curve is `csi-paper faults`.
go test -run='^TestFaultSweepSmoke$' -count=1 ./internal/experiments > /dev/null

echo "check.sh: all gates passed"
