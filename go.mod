module csi

go 1.22
