package csi_test

import (
	"testing"

	"csi"
)

// TestFacadeEndToEnd exercises the full public API surface exactly as the
// README quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	man, err := csi.Encode(csi.EncodeConfig{Name: "f", Seed: 2, DurationSec: 300, TargetPASR: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := csi.Stream(csi.SessionConfig{
		Design:    csi.CH,
		Manifest:  man,
		Bandwidth: csi.ConstantBandwidth(4_000_000),
		Duration:  120,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := csi.Infer(man, res.Run.Trace, csi.Params{MediaHost: man.Host})
	if err != nil {
		t.Fatal(err)
	}
	best, worst, err := inf.AccuracyRange(res.Run.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if best < 1.0 {
		t.Errorf("facade CH best accuracy %.3f, want 1.0", best)
	}
	if worst < 0.9 {
		t.Errorf("facade CH worst accuracy %.3f", worst)
	}

	var chunks []csi.QoEChunk
	for i, a := range inf.Best.Assignments {
		if a.Audio || a.Noise {
			continue
		}
		r := inf.Requests[i]
		chunks = append(chunks, csi.QoEChunk{
			ReqTime: r.Time, DoneTime: r.LastData,
			Track: a.Ref.Track, Index: a.Ref.Index, Size: man.Size(a.Ref),
		})
	}
	rep, err := csi.AnalyzeQoE(chunks, csi.QoEConfig{ChunkDur: man.ChunkDur, Horizon: 120})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataBytes == 0 || len(rep.TrackShare) == 0 {
		t.Errorf("empty QoE report: %+v", rep)
	}

	// Shaped run through the same facade.
	shaped, err := csi.Stream(csi.SessionConfig{
		Design:    csi.CH,
		Manifest:  man,
		Bandwidth: csi.ConstantBandwidth(4_000_000),
		Shaper:    &csi.TokenBucketConfig{RateBps: 1_000_000, BucketSize: 50_000},
		Duration:  120,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if shaped.Stats.DownlinkBytes >= res.Stats.DownlinkBytes {
		t.Errorf("shaping did not reduce usage: %d vs %d", shaped.Stats.DownlinkBytes, res.Stats.DownlinkBytes)
	}

	// Fingerprintability helper.
	f1, err := csi.UniqueFraction(man, 1, 0.01, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := csi.UniqueFraction(man, 6, 0.01, 1500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f6 < f1 {
		t.Errorf("uniqueness not increasing: L1=%.3f L6=%.3f", f1, f6)
	}
}
